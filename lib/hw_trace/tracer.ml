module Ring = Hw_util.Ring

type attr = Str of string | Int of int | Bool of bool | Real of float

type span = {
  span_id : int;
  parent : int; (* span_id of the enclosing span; 0 for the root *)
  name : string;
  start : float;
  mutable duration : float;
  mutable attrs : (string * attr) list; (* reverse insertion order *)
  mutable error : string option;
}

type completed = {
  id : int;
  start : float;
  duration : float;
  errored : bool;
  spans : span array; (* open order: spans.(0) is the root *)
}

type t = {
  now : unit -> float;
  enabled : bool;
  slow_threshold : float;
  sample_every : int;
  recorder : completed Ring.t;
  (* One trace at a time: the whole packet/event lifecycle is a single
     synchronous call stack (datapath rx -> controller -> handlers ->
     hwdb), so per-trace state can live flat in the tracer. *)
  mutable trace_id : int; (* 0 when no trace is active *)
  mutable stack : span list; (* open spans, innermost first *)
  mutable finished : span list; (* closed spans, completion order reversed *)
  mutable errored : bool;
  mutable left : int; (* Sampled-style 1-in-N countdown *)
  mutable next_trace_id : int;
  m_started : Hw_metrics.Counter.t;
  m_kept : Hw_metrics.Counter.t;
  m_dropped : Hw_metrics.Counter.t;
  m_spans : Hw_metrics.Counter.t;
  h_duration : Hw_metrics.Histogram.t;
}

let make ~enabled ~capacity ~sample_every ~slow_threshold ~counter ~histogram ~now =
  {
    now;
    enabled;
    slow_threshold;
    sample_every;
    recorder = Ring.create ~capacity;
    trace_id = 0;
    stack = [];
    finished = [];
    errored = false;
    left = 1; (* first completed trace is sampled, like Sampled.create *)
    next_trace_id = 1;
    m_started = counter "trace_started_total" "Traces opened at a root span";
    m_kept = counter "trace_kept_total" "Completed traces retained in the flight recorder";
    m_dropped = counter "trace_dropped_total" "Completed traces discarded by tail-sampling";
    m_spans = counter "trace_spans_total" "Spans closed across all traces";
    h_duration = histogram "trace_duration_seconds" "End-to-end duration of sampled traces";
  }

let create ?(capacity = 128) ?(sample_every = 1) ?(slow_threshold = 0.05) ?metrics ~now () =
  if capacity <= 0 then invalid_arg "Hw_trace.Tracer.create: capacity must be positive";
  if sample_every <= 0 then invalid_arg "Hw_trace.Tracer.create: sample_every must be positive";
  let metrics = Option.value metrics ~default:Hw_metrics.Registry.default in
  make ~enabled:true ~capacity ~sample_every ~slow_threshold
    ~counter:(fun name help -> Hw_metrics.Registry.counter metrics name ~help)
    ~histogram:(fun name help -> Hw_metrics.Registry.histogram metrics name ~help)
    ~now

(* Standalone instruments: the disabled tracer must not pollute the
   default registry (or require one). It never records, so they stay 0. *)
let disabled =
  make ~enabled:false ~capacity:1 ~sample_every:1 ~slow_threshold:infinity
    ~counter:(fun name help -> Hw_metrics.Counter.create ~name ~help)
    ~histogram:(fun name help -> Hw_metrics.Histogram.create ~name ~help)
    ~now:(fun () -> 0.)

let enabled t = t.enabled
let in_trace t = t.trace_id <> 0
let trace_id t = if t.trace_id = 0 then None else Some t.trace_id

let set_attr t key v =
  match t.stack with [] -> () | s :: _ -> s.attrs <- (key, v) :: s.attrs

let mark_error t msg =
  match t.stack with
  | [] -> ()
  | s :: _ ->
      s.error <- Some msg;
      t.errored <- true

let open_span ?parent t name attrs =
  let parent =
    match parent with
    | Some p -> p
    | None -> ( match t.stack with [] -> 0 | p :: _ -> p.span_id)
  in
  (* span ids are allocated densely in open order, starting at 1 *)
  let span_id = List.length t.finished + List.length t.stack + 1 in
  let s =
    { span_id; parent; name; start = t.now (); duration = 0.; attrs; error = None }
  in
  t.stack <- s :: t.stack;
  s

let close_span t (s : span) =
  s.duration <- t.now () -. s.start;
  (match t.stack with
  | top :: rest when top == s -> t.stack <- rest
  | _ ->
      (* unbalanced close (shouldn't happen with the with_* combinators);
         drop everything opened above [s] as implicitly closed *)
      let rec drop = function
        | [] -> []
        | x :: rest -> if x == s then rest else drop rest
      in
      t.stack <- drop t.stack);
  t.finished <- s :: t.finished;
  Hw_metrics.Counter.incr t.m_spans

let finish_trace t root =
  close_span t root;
  let duration = root.duration in
  let sampled = t.left <= 1 in
  if sampled then begin
    t.left <- t.sample_every;
    Hw_metrics.Histogram.observe t.h_duration duration
  end
  else t.left <- t.left - 1;
  let keep = t.errored || duration >= t.slow_threshold || sampled in
  if keep then begin
    let spans = Array.of_list t.finished in
    Array.sort (fun a b -> compare a.span_id b.span_id) spans;
    Ring.push t.recorder
      { id = t.trace_id; start = root.start; duration; errored = t.errored; spans };
    Hw_metrics.Counter.incr t.m_kept
  end
  else Hw_metrics.Counter.incr t.m_dropped;
  t.trace_id <- 0;
  t.stack <- [];
  t.finished <- [];
  t.errored <- false

let with_span t ?(attrs = []) name f =
  if t.trace_id = 0 then f ()
  else begin
    let s = open_span t name attrs in
    match f () with
    | v ->
        close_span t s;
        v
    | exception exn ->
        s.error <- Some (Printexc.to_string exn);
        t.errored <- true;
        close_span t s;
        raise exn
  end

let run_as_root t root f =
  match f () with
  | v ->
      finish_trace t root;
      v
  | exception exn ->
      root.error <- Some (Printexc.to_string exn);
      t.errored <- true;
      finish_trace t root;
      raise exn

let with_trace t ?attrs name f =
  if not t.enabled then f ()
  else if t.trace_id <> 0 then with_span t ?attrs name f
  else begin
    Hw_metrics.Counter.incr t.m_started;
    t.trace_id <- t.next_trace_id;
    t.next_trace_id <- t.next_trace_id + 1;
    let root = open_span t name (Option.value attrs ~default:[]) in
    run_as_root t root f
  end

(* A trace whose causal parent lives on another node (an RPC request
   carrying propagated context): the root records under the REMOTE trace
   id with its parent pointing at the remote span, so every node's
   flight-recorder rows for one distributed operation share a trace id
   and link into one tree. Span ids stay locally dense — the id
   namespace is per node, only (trace_id, parent-of-root) cross. *)
let with_remote_trace t ~trace_id ~parent_span ?attrs name f =
  if not t.enabled then f ()
  else if t.trace_id <> 0 then with_span t ?attrs name f
  else if trace_id <= 0 then with_trace t ?attrs name f
  else begin
    Hw_metrics.Counter.incr t.m_started;
    t.trace_id <- trace_id;
    let root =
      open_span ~parent:(max 0 parent_span) t name (Option.value attrs ~default:[])
    in
    run_as_root t root f
  end

let current_span t = match t.stack with [] -> 0 | s :: _ -> s.span_id

(* Allocation + ingest hooks for externally assembled traces
   (Hw_trace.Builder drives these for async span trees that cannot live
   on the synchronous stack). *)
let next_id t =
  Hw_metrics.Counter.incr t.m_started;
  let id = t.next_trace_id in
  t.next_trace_id <- t.next_trace_id + 1;
  id

let record t (c : completed) =
  if t.enabled && Array.length c.spans > 0 then begin
    Ring.push t.recorder c;
    Hw_metrics.Counter.incr t.m_kept;
    Hw_metrics.Counter.add t.m_spans (Array.length c.spans);
    Hw_metrics.Histogram.observe t.h_duration c.duration
  end

let time t = t.now ()
let traces t = Ring.to_list_newest_first t.recorder
let find t id = List.find_opt (fun c -> c.id = id) (Ring.to_list t.recorder)
let kept t = Ring.length t.recorder
let capacity t = Ring.capacity t.recorder
let clear t = Ring.clear t.recorder
let started t = Hw_metrics.Counter.value t.m_started
let dropped t = Hw_metrics.Counter.value t.m_dropped

let attr_to_string = function
  | Str s -> s
  | Int i -> string_of_int i
  | Bool b -> string_of_bool b
  | Real f -> Printf.sprintf "%g" f

let attrs_to_string attrs =
  String.concat ","
    (List.rev_map (fun (k, v) -> k ^ "=" ^ attr_to_string v) attrs)
