(** A span-based tracer with explicit context propagation: the causal
    record of one packet/event lifecycle through the router.

    The whole lifecycle this system cares about — datapath rx, flow-table
    miss, packet-in, controller dispatch, DHCP/DNS handling, flow mods,
    hwdb inserts and triggers — is one synchronous call stack, so trace
    context is a per-tracer span stack rather than a value threaded
    through every signature. A component opens a trace with {!with_trace}
    at its entry point (datapath rx, controller event dispatch); hops
    below it open child spans with {!with_span}; both are no-ops costing
    one branch when the tracer is {!disabled} or no trace is active —
    the hot path never allocates or touches the clock.

    Completed traces land in a bounded flight-recorder ring
    ([Hw_util.Ring]) under {e tail-sampling}: the keep/drop decision is
    made at trace completion, when the outcome is known. Traces that
    errored or ran past [slow_threshold] are always kept; the rest are
    kept 1-in-[sample_every] following the [Hw_metrics.Sampled]
    discipline (first completion sampled, then every N-th). *)

type attr = Str of string | Int of int | Bool of bool | Real of float
(** Typed span attributes (dpid, five-tuple fields, MAC, verdict, ...). *)

type span = {
  span_id : int; (** dense, open order, 1 = root *)
  parent : int; (** [span_id] of the enclosing span; 0 for the root *)
  name : string;
  start : float;
  mutable duration : float; (** seconds; set when the span closes *)
  mutable attrs : (string * attr) list; (** reverse insertion order *)
  mutable error : string option;
}

type completed = {
  id : int; (** trace id, unique per tracer, starting at 1 *)
  start : float;
  duration : float;
  errored : bool; (** any span recorded an error *)
  spans : span array; (** open order: [spans.(0)] is the root *)
}

type t

val create :
  ?capacity:int ->
  ?sample_every:int ->
  ?slow_threshold:float ->
  ?metrics:Hw_metrics.Registry.t ->
  now:(unit -> float) ->
  unit ->
  t
(** [capacity] (default 128) bounds the flight recorder; [sample_every]
    (default 1 — keep everything the ring can hold) is the tail-sampling
    rate for unremarkable traces; [slow_threshold] (default 50 ms) marks
    a trace slow enough to always keep. Tracer health counters
    ([trace_started_total], [trace_kept_total], [trace_dropped_total],
    [trace_spans_total]) and the sampled [trace_duration_seconds]
    histogram register in [metrics] (default [Registry.default]).
    @raise Invalid_argument if [capacity] or [sample_every] is not
    positive. *)

val disabled : t
(** The inert tracer components default to: {!with_trace} and
    {!with_span} reduce to calling the thunk. Registers nothing. *)

val enabled : t -> bool

(** {2 Recording} *)

val with_trace : t -> ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a
(** [with_trace t name f] runs [f] inside a fresh trace rooted at a span
    [name]. If a trace is already active (e.g. a packet-out re-entering
    the datapath), it degrades to {!with_span} — roots compose. If [f]
    raises, the span and trace are marked errored and the exception is
    re-raised after the trace completes. *)

val with_span : t -> ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a
(** Child span around one hop. Outside any trace: calls [f] directly
    (one branch, no allocation, no clock read). *)

val with_remote_trace :
  t ->
  trace_id:int ->
  parent_span:int ->
  ?attrs:(string * attr) list ->
  string ->
  (unit -> 'a) ->
  'a
(** Like {!with_trace}, but the trace's causal parent lives on another
    node: the completed record carries the propagated [trace_id] (not a
    locally allocated one) and the root span's [parent] is the remote
    [parent_span], so flight-recorder rows across nodes stitch into one
    distributed tree by trace id. Span ids remain locally dense — the
    span-id namespace is per node. Degrades to {!with_span} inside an
    active trace and to {!with_trace} when [trace_id <= 0]. *)

val current_span : t -> int
(** Span id of the innermost open span; 0 outside a trace. Pair with
    {!trace_id} to build propagation context for an outgoing request. *)

val in_trace : t -> bool
(** [true] while a trace is active — guard attribute computation with
    this so the untraced path stays allocation-free. *)

val trace_id : t -> int option
(** Active trace id, for stamping log records. *)

val set_attr : t -> string -> attr -> unit
(** Attach an attribute to the innermost open span; no-op outside a
    trace. *)

val mark_error : t -> string -> unit
(** Mark the innermost open span (and hence the trace) errored without
    raising; no-op outside a trace. *)

val time : t -> float
(** The tracer's clock (0 for {!disabled}). *)

(** {2 Ingest of externally assembled traces}

    The stack discipline above fits one synchronous lifecycle. Work that
    completes through callbacks — the fleet manager's federated fan-out —
    assembles its span tree off-stack (see {!Builder}) and hands the
    finished record in here. *)

val next_id : t -> int
(** Allocate a fresh trace id (counts toward [trace_started_total]). *)

val record : t -> completed -> unit
(** Push an externally assembled trace into the flight recorder,
    updating kept/span counters and the duration histogram. No-op when
    the tracer is disabled or the record has no spans. *)

(** {2 Flight recorder readout} *)

val traces : t -> completed list
(** Newest first. *)

val find : t -> int -> completed option
val kept : t -> int
val capacity : t -> int
val clear : t -> unit
val started : t -> int
val dropped : t -> int

(** {2 Rendering helpers} *)

val attr_to_string : attr -> string

val attrs_to_string : (string * attr) list -> string
(** ["k=v,k=v"] in insertion order (as the hwdb Traces table stores). *)
