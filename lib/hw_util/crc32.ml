(* CRC-32 (IEEE, reflected, poly 0xEDB88320), slicing-by-8: eight
   precomputed 256-entry tables let the hot loop consume 8 bytes per
   iteration with independent lookups, breaking the per-byte dependency
   chain of the classic table algorithm (~3 ns/byte -> well under
   1 ns/byte; the WAL frames every durable row, so this is on the
   durable-insert hot path). All arithmetic is on native ints masked to
   32 bits, so there is no Int32/Int64 boxing anywhere in the loop. *)

(* built eagerly at module init (~10us): [sub] runs per WAL record, and
   a per-call [Lazy.force] branch is measurable at that grain *)
let tables =
  let t = Array.make_matrix 8 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1)
      else c := !c lsr 1
    done;
    t.(0).(n) <- !c
  done;
  for k = 1 to 7 do
    for n = 0 to 255 do
      let prev = t.(k - 1).(n) in
      t.(k).(n) <- t.(0).(prev land 0xFF) lxor (prev lsr 8)
    done
  done;
  t

let mask32 = 0xFFFFFFFF

let sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.sub";
  let t = tables in
  let t0 = t.(0) and t1 = t.(1) and t2 = t.(2) and t3 = t.(3) in
  let t4 = t.(4) and t5 = t.(5) and t6 = t.(6) and t7 = t.(7) in
  let crc = ref mask32 in
  let i = ref pos in
  let last8 = pos + len - 8 in
  (* every table index is [byte lxor (crc-slice land 0xFF)], provably in
     0..255, so the lookups can skip their bounds checks *)
  while !i <= last8 do
    let p = !i in
    let c = !crc in
    crc :=
      Array.unsafe_get t7 (Char.code (String.unsafe_get s p) lxor (c land 0xFF))
      lxor Array.unsafe_get t6
             (Char.code (String.unsafe_get s (p + 1)) lxor ((c lsr 8) land 0xFF))
      lxor Array.unsafe_get t5
             (Char.code (String.unsafe_get s (p + 2)) lxor ((c lsr 16) land 0xFF))
      lxor Array.unsafe_get t4
             (Char.code (String.unsafe_get s (p + 3)) lxor ((c lsr 24) land 0xFF))
      lxor Array.unsafe_get t3 (Char.code (String.unsafe_get s (p + 4)))
      lxor Array.unsafe_get t2 (Char.code (String.unsafe_get s (p + 5)))
      lxor Array.unsafe_get t1 (Char.code (String.unsafe_get s (p + 6)))
      lxor Array.unsafe_get t0 (Char.code (String.unsafe_get s (p + 7)));
    i := p + 8
  done;
  for p = !i to pos + len - 1 do
    crc :=
      Array.unsafe_get t0 ((!crc lxor Char.code (String.unsafe_get s p)) land 0xFF)
      lxor (!crc lsr 8)
  done;
  !crc lxor mask32

let string s = sub s ~pos:0 ~len:(String.length s)
