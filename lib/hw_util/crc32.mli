(** CRC-32 (IEEE 802.3 polynomial, reflected), as used by the WAL record
    frames. One shared lookup table, no allocation per call.

    The ones'-complement Internet checksum in {!Wire} is kept for packet
    headers where the protocol mandates it; WAL integrity needs the far
    stronger burst-error detection of CRC-32. Results are in
    [0, 0xFFFF_FFFF] and fit a native [int] on 64-bit platforms. *)

val string : string -> int
(** CRC-32 of the whole string. *)

val sub : string -> pos:int -> len:int -> int
(** CRC-32 of [len] bytes starting at [pos].
    @raise Invalid_argument if the range is out of bounds. *)
