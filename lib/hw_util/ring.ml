type 'a t = {
  mutable data : 'a option array;
  mutable start : int; (* index of oldest element *)
  mutable len : int;
  mutable pushed : int;
  cap : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { data = Array.make capacity None; start = 0; len = 0; pushed = 0; cap = capacity }

let capacity t = t.cap
let length t = t.len
let is_empty t = t.len = 0
let is_full t = t.len = t.cap
let total_pushed t = t.pushed

let push t x =
  let slot = (t.start + t.len) mod t.cap in
  t.data.(slot) <- Some x;
  if t.len = t.cap then t.start <- (t.start + 1) mod t.cap
  else t.len <- t.len + 1;
  t.pushed <- t.pushed + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ring.get: index out of range";
  match t.data.((t.start + i) mod t.cap) with
  | Some x -> x
  | None -> assert false

let peek_oldest t = if t.len = 0 then None else Some (get t 0)
let peek_newest t = if t.len = 0 then None else Some (get t (t.len - 1))

let unsafe_get t i =
  match t.data.((t.start + i) mod t.cap) with Some x -> x | None -> assert false

let iter f t =
  for i = 0 to t.len - 1 do
    f (unsafe_get t i)
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) t;
  !acc

let fold_range f acc t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg "Ring.fold_range: window out of range";
  let acc = ref acc in
  let seg lo hi =
    (* contiguous slice: no per-element [mod] *)
    for j = lo to hi do
      match Array.unsafe_get t.data j with
      | Some x -> acc := f !acc x
      | None -> assert false
    done
  in
  let first = (t.start + pos) mod t.cap in
  if first + len <= t.cap then seg first (first + len - 1)
  else begin
    seg first (t.cap - 1);
    seg 0 (first + len - t.cap - 1)
  end;
  !acc

let lower_bound p t =
  (* invariant: every index < lo fails [p], every index >= hi satisfies it *)
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if p (unsafe_get t mid) then hi := mid else lo := mid + 1
  done;
  !lo

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)
let to_list_newest_first t = fold (fun acc x -> x :: acc) [] t
let filter p t = List.filter p (to_list t)

let clear t =
  Array.fill t.data 0 t.cap None;
  t.start <- 0;
  t.len <- 0
