(* Blob stores. The mem backend is a hashtable of buffers; the file
   backend maps blob names to files in one directory and implements
   atomic replace as write-temp-then-rename, the standard crash-safe
   publication idiom. *)

type backend =
  | Mem of (string, Buffer.t) Hashtbl.t
  | File of { dir : string; fsync : bool }

type t = backend

let mem () = Mem (Hashtbl.create 8)

let check_name name =
  if name = "" || String.exists (fun c -> c = '/' || c = '\\') name then
    invalid_arg ("Store: bad blob name " ^ name)

let file ?(fsync = false) ~dir () =
  (try
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  File { dir; fsync }

let path dir name = Filename.concat dir name

let sync_out oc = Unix.fsync (Unix.descr_of_out_channel oc)

let load t name =
  check_name name;
  match t with
  | Mem blobs -> (
      match Hashtbl.find_opt blobs name with
      | Some b -> Some (Buffer.contents b)
      | None -> None)
  | File { dir; _ } ->
      let p = path dir name in
      if Sys.file_exists p then (
        let ic = open_in_bin p in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Some (really_input_string ic (in_channel_length ic))))
      else None

let append t name data =
  check_name name;
  match t with
  | Mem blobs ->
      let b =
        match Hashtbl.find_opt blobs name with
        | Some b -> b
        | None ->
            let b = Buffer.create 256 in
            Hashtbl.replace blobs name b;
            b
      in
      Buffer.add_string b data
  | File { dir; fsync } ->
      let oc =
        open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ]
          0o644 (path dir name)
      in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc data;
          flush oc;
          if fsync then sync_out oc)

let append_sub t name b pos len =
  check_name name;
  match t with
  | Mem blobs ->
      let buf =
        match Hashtbl.find_opt blobs name with
        | Some buf -> buf
        | None ->
            let buf = Buffer.create 256 in
            Hashtbl.replace blobs name buf;
            buf
      in
      Buffer.add_subbytes buf b pos len
  | File { dir; fsync } ->
      let oc =
        open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ]
          0o644 (path dir name)
      in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output oc b pos len;
          flush oc;
          if fsync then sync_out oc)

let replace t name data =
  check_name name;
  match t with
  | Mem blobs ->
      let b = Buffer.create (String.length data) in
      Buffer.add_string b data;
      Hashtbl.replace blobs name b
  | File { dir; fsync } ->
      let p = path dir name in
      let tmp = p ^ ".tmp" in
      let oc =
        open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ]
          0o644 tmp
      in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc data;
          flush oc;
          if fsync then sync_out oc);
      Sys.rename tmp p

let remove t name =
  check_name name;
  match t with
  | Mem blobs -> Hashtbl.remove blobs name
  | File { dir; _ } ->
      let p = path dir name in
      if Sys.file_exists p then Sys.remove p

let size t name =
  check_name name;
  match t with
  | Mem blobs -> (
      match Hashtbl.find_opt blobs name with
      | Some b -> Buffer.length b
      | None -> 0)
  | File { dir; _ } ->
      let p = path dir name in
      if Sys.file_exists p then (
        let ic = open_in_bin p in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> in_channel_length ic))
      else 0
