(** Named-blob storage behind the write-ahead log.

    The WAL needs exactly four durability primitives — append to a
    growing blob, atomically replace a blob, read a blob, drop a blob —
    so that is the whole interface. Two backends: {!mem} keeps blobs in
    a hashtable so `Hw_sim` runs and crash-point tests stay fully
    deterministic with no filesystem in the loop; {!file} maps each blob
    to a file in one directory, with atomic replace implemented as
    write-temp-then-rename.

    Blob names are chosen by the WAL ([<wal>.log], [<wal>.snap]) and must
    not contain path separators. *)

type t

val mem : unit -> t
(** Fresh, empty in-memory store. Two routers sharing one [mem] store
    see each other's blobs — which is exactly how a simulated "restart"
    hands state from the dead instance to its successor. *)

val file : ?fsync:bool -> dir:string -> unit -> t
(** Blobs as files under [dir] (created if missing). With [fsync]
    (default [false]) every append and replace is forced to stable
    storage before returning — the real-durability mode; without it the
    OS page cache decides, which is fine for tests. *)

val load : t -> string -> string option
(** Full contents of a blob, [None] if it does not exist. *)

val append : t -> string -> string -> unit
(** [append t name data] extends the blob (creating it if missing). *)

val append_sub : t -> string -> Bytes.t -> int -> int -> unit
(** [append_sub t name b pos len] appends [len] bytes of [b] starting
    at [pos] — {!append} without the intermediate string, for the WAL's
    group-commit batch. *)

val replace : t -> string -> string -> unit
(** Atomically replace the blob's contents: a crash during [replace]
    leaves either the old or the new contents, never a mixture. *)

val remove : t -> string -> unit
(** Delete the blob; no-op if absent. *)

val size : t -> string -> int
(** Current byte size, 0 if absent. *)
