(* The write-ahead log proper.

   On-disk layout, all integers big-endian:

   record   u32 len(body) | u32 crc32(body) | body
   body     u64 lsn | payload bytes
   snapshot u16 magic 0x5741 | u8 version | u64 covered_lsn
            | u32 crc32(payload) | u32 len(payload) | payload

   The length prefix bounds the scan, the CRC detects torn and
   bit-flipped records, and the LSN lets replay skip records a snapshot
   already covers. Recovery is "truncate at tear": scan from the front,
   stop at the first record that does not check out, never raise. *)

module Counter = Hw_metrics.Counter
module Crc32 = Hw_util.Crc32

let log_src = Logs.Src.create "hw.wal" ~doc:"Write-ahead log"

module Log = (val Logs.src_log log_src : Logs.LOG)

let snap_magic = 0x5741 (* "WA" *)
let snap_version = 1
let snap_header_len = 2 + 1 + 8 + 4 + 4
let record_header_len = 8

(* far above any row the codec produces; an absurd length field is a
   tear, not an allocation request *)
let max_record = 1 lsl 26

type recovered = {
  snapshot : string option;
  records : string list;
  next_lsn : int;
  tail_truncated : bool;
}

(* Two pending-record representations, chosen once at [open_]:

   - without an interposer (production), appends frame straight into
     [batch], a manually-grown byte buffer holding exactly the bytes
     the next flush hands to the store — zero allocations per append,
     nothing promoted to the major heap while records wait for the
     group commit. CRC fields are left blank at append time and patched
     in one pass at flush: an unflushed record is lost in a crash
     either way, so checksumming it early buys nothing, and deferring
     it keeps the insert hot path to a couple of blits;
   - with an interposer (the disk fault plane), each framed record is
     kept as its own fully-checksummed string in [buf] so the fault
     point can shorten, corrupt or drop it individually during flush. *)
type t = {
  store : Store.t;
  wal_name : string;
  log_name : string;
  snap_name : string;
  interpose : (string -> write:(string -> unit) -> unit) option;
  snapshot_every : int;
  max_pending : int;
  mutable next : int; (* next LSN to assign *)
  mutable buf : string list; (* framed records, newest first (interposed) *)
  mutable batch : Bytes.t; (* framed records, append order (direct) *)
  mutable batch_len : int; (* valid bytes in [batch] *)
  mutable buf_count : int;
  mutable since_snapshot : int;
  mutable snapshot_source : (unit -> string) option;
  c_appends : Counter.t;
  c_flushes : Counter.t;
  c_flushed_bytes : Counter.t;
  c_snapshots : Counter.t;
}

let name t = t.wal_name
let next_lsn t = t.next
let pending t = t.buf_count

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let u32_at s pos = Int32.to_int (String.get_int32_be s pos) land 0xFFFFFFFF

(* [fill b 16] writes the payload bytes in place: the framed record is
   the only allocation, whether the payload arrives as a string or is
   encoded straight into the frame (the durable-insert hot path). *)
let frame_with ~lsn ~size fill =
  let blen = 8 + size in
  let b = Bytes.create (record_header_len + blen) in
  Bytes.set_int64_be b 8 (Int64.of_int lsn);
  fill b 16;
  let body_crc =
    Crc32.sub (Bytes.unsafe_to_string b) ~pos:record_header_len ~len:blen
  in
  Bytes.set_int32_be b 0 (Int32.of_int blen);
  Bytes.set_int32_be b 4 (Int32.of_int body_crc);
  Bytes.unsafe_to_string b

(* Scan a log blob from the front. Returns the records that check out
   (in order), the byte length of the valid prefix, and whether a torn
   tail was cut. Never raises on malformed input. *)
let scan_log data =
  let len = String.length data in
  let pos = ref 0 in
  let torn = ref false in
  let acc = ref [] in
  (try
     while !pos < len do
       if len - !pos < record_header_len then begin
         torn := true;
         raise Exit
       end;
       let blen = u32_at data !pos in
       let crc = u32_at data (!pos + 4) in
       if blen < 8 || blen > max_record || len - !pos - record_header_len < blen
       then begin
         torn := true;
         raise Exit
       end;
       if Crc32.sub data ~pos:(!pos + record_header_len) ~len:blen <> crc
       then begin
         torn := true;
         raise Exit
       end;
       let lsn = Int64.to_int (String.get_int64_be data (!pos + 8)) in
       let payload = String.sub data (!pos + 16) (blen - 8) in
       acc := (lsn, payload) :: !acc;
       pos := !pos + record_header_len + blen
     done
   with Exit -> ());
  (List.rev !acc, !pos, !torn)

let parse_snapshot data =
  if String.length data < snap_header_len then Error ()
  else begin
    let magic = Char.code data.[0] lsl 8 lor Char.code data.[1] in
    let version = Char.code data.[2] in
    let covered = Int64.to_int (String.get_int64_be data 3) in
    let crc = u32_at data 11 in
    let blen = u32_at data 15 in
    if
      magic <> snap_magic || version <> snap_version
      || String.length data <> snap_header_len + blen
    then Error ()
    else if Crc32.sub data ~pos:snap_header_len ~len:blen <> crc then Error ()
    else Ok (covered, String.sub data snap_header_len blen)
  end

let render_snapshot ~covered payload =
  let b = Bytes.create snap_header_len in
  Bytes.set b 0 (Char.chr (snap_magic lsr 8));
  Bytes.set b 1 (Char.chr (snap_magic land 0xFF));
  Bytes.set b 2 (Char.chr snap_version);
  Bytes.set_int64_be b 3 (Int64.of_int covered);
  Bytes.set_int32_be b 11 (Int32.of_int (Crc32.string payload));
  Bytes.set_int32_be b 15 (Int32.of_int (String.length payload));
  Bytes.unsafe_to_string b ^ payload

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let recover_raw ~store ~name =
  let log_name = name ^ ".log" and snap_name = name ^ ".snap" in
  let snapshot, covered, snap_corrupt =
    match Store.load store snap_name with
    | None -> (None, -1, false)
    | Some data -> (
        match parse_snapshot data with
        | Ok (covered, body) -> (Some body, covered, false)
        | Error () -> (None, -1, true))
  in
  let log = match Store.load store log_name with Some l -> l | None -> "" in
  let records, valid_len, torn = scan_log log in
  (* records the snapshot already covers are replayed from it, not the
     log — this is what makes a crash between snapshot publication and
     log truncation recover cleanly *)
  let tail = List.filter (fun (lsn, _) -> lsn > covered) records in
  let last =
    List.fold_left (fun acc (lsn, _) -> max acc lsn) covered records
  in
  ( {
      snapshot;
      records = List.map snd tail;
      next_lsn = last + 1;
      tail_truncated = torn;
    },
    valid_len,
    snap_corrupt,
    List.length records )

let recover ~store ~name =
  let r, _, _, _ = recover_raw ~store ~name in
  r

(* ------------------------------------------------------------------ *)
(* Appending                                                           *)
(* ------------------------------------------------------------------ *)

(* Flush the group-commit buffer in one batch append to the store.

   Direct mode: the batch bytes were assembled at append time, so the
   flush is a single [Buffer.contents] and store append.

   Interposed mode: pass each framed record through the interposer into
   a batch first. If the interposer raises (injected
   crash-at-boundary), the bytes already in the batch are persisted
   first — exactly the longest durable prefix a real mid-batch crash
   would leave — and the exception propagates. Records still buffered
   at that point are lost, as they would be. *)
(* Patch the CRC field of every record in [batch] (deferred from append
   time), walking the length prefixes. *)
let seal_batch t =
  let b = t.batch in
  let s = Bytes.unsafe_to_string b in
  let pos = ref 0 in
  while !pos < t.batch_len do
    let blen = Int32.to_int (Bytes.get_int32_be b !pos) land 0xFFFFFFFF in
    let crc = Crc32.sub s ~pos:(!pos + record_header_len) ~len:blen in
    Bytes.set_int32_be b (!pos + 4) (Int32.of_int crc);
    pos := !pos + record_header_len + blen
  done

let flush_records t =
  if t.buf_count > 0 then begin
    let n = t.buf_count in
    t.buf_count <- 0;
    (match t.interpose with
    | None ->
        seal_batch t;
        let len = t.batch_len in
        t.batch_len <- 0;
        if len > 0 then begin
          Store.append_sub t.store t.log_name t.batch 0 len;
          Counter.add t.c_flushed_bytes len
        end
    | Some f ->
        let records = List.rev t.buf in
        t.buf <- [];
        let batch = Buffer.create 256 in
        let write s = Buffer.add_string batch s in
        (try List.iter (fun framed -> f framed ~write) records
         with e ->
           if Buffer.length batch > 0 then
             Store.append t.store t.log_name (Buffer.contents batch);
           raise e);
        let data = Buffer.contents batch in
        if String.length data > 0 then begin
          Store.append t.store t.log_name data;
          Counter.add t.c_flushed_bytes (String.length data)
        end);
    t.since_snapshot <- t.since_snapshot + n;
    Counter.incr t.c_flushes
  end

let snapshot t =
  match t.snapshot_source with
  | None -> ()
  | Some source ->
      flush_records t;
      let payload = source () in
      let covered = t.next - 1 in
      Store.replace t.store t.snap_name (render_snapshot ~covered payload);
      Store.replace t.store t.log_name "";
      t.since_snapshot <- 0;
      Counter.incr t.c_snapshots;
      Log.debug (fun m ->
          m "%s: snapshot covering lsn %d (%d bytes)" t.wal_name covered
            (String.length payload))

let flush t =
  flush_records t;
  if t.snapshot_source <> None && t.since_snapshot >= t.snapshot_every then
    snapshot t

(* Direct-mode framing: write the frame straight into the batch buffer
   at its current end — no per-record allocation. The CRC field is left
   zero; {!seal_batch} fills it during flush. *)
let frame_into t ~lsn ~size fill =
  let blen = 8 + size in
  let total = record_header_len + blen in
  let pos = t.batch_len in
  if Bytes.length t.batch - pos < total then begin
    let cap = max (pos + total) (2 * Bytes.length t.batch) in
    let grown = Bytes.create cap in
    Bytes.blit t.batch 0 grown 0 pos;
    t.batch <- grown
  end;
  let b = t.batch in
  Bytes.set_int32_be b pos (Int32.of_int blen);
  Bytes.set_int32_be b (pos + 4) 0l;
  Bytes.set_int64_be b (pos + 8) (Int64.of_int lsn);
  fill b (pos + 16);
  t.batch_len <- pos + total

let push_done t =
  t.buf_count <- t.buf_count + 1;
  Counter.incr t.c_appends;
  if t.buf_count >= t.max_pending then flush t

let append_with t ~size fill =
  let lsn = t.next in
  t.next <- lsn + 1;
  (match t.interpose with
  | None -> frame_into t ~lsn ~size fill
  | Some _ -> t.buf <- frame_with ~lsn ~size fill :: t.buf);
  push_done t

let append t payload =
  append_with t ~size:(String.length payload) (fun b pos ->
      Bytes.blit_string payload 0 b pos (String.length payload))

let set_snapshot_source t source = t.snapshot_source <- Some source

(* ------------------------------------------------------------------ *)
(* Open                                                                *)
(* ------------------------------------------------------------------ *)

let open_ ?(metrics = Hw_metrics.Registry.default) ?interpose
    ?(snapshot_every = 4096) ?(max_pending = 1024) ~store ~name () =
  let counter n help = Hw_metrics.Registry.counter metrics ~help n in
  let c_truncated =
    counter "wal_recovery_truncated_total"
      "Recoveries that cut a torn/short/corrupt log tail"
  in
  let c_recovered =
    counter "wal_recovery_records_total" "Valid records read back at recovery"
  in
  let c_snap_corrupt =
    counter "wal_snapshot_corrupt_total"
      "Snapshots discarded at recovery for failing their checksum"
  in
  let recovered, valid_len, snap_corrupt, n_records =
    recover_raw ~store ~name
  in
  let log_name = name ^ ".log" in
  if recovered.tail_truncated then begin
    (* cut the log back to the durable prefix so new appends never land
       behind garbage *)
    let log = match Store.load store log_name with Some l -> l | None -> "" in
    Store.replace store log_name (String.sub log 0 valid_len);
    Counter.incr c_truncated;
    Log.warn (fun m ->
        m "%s: torn tail truncated at byte %d of %d" name valid_len
          (String.length log))
  end;
  if snap_corrupt then Counter.incr c_snap_corrupt;
  Counter.add c_recovered n_records;
  let t =
    {
      store;
      wal_name = name;
      log_name;
      snap_name = name ^ ".snap";
      interpose;
      snapshot_every;
      max_pending;
      next = recovered.next_lsn;
      buf = [];
      batch = Bytes.create 4096;
      batch_len = 0;
      buf_count = 0;
      since_snapshot = List.length recovered.records;
      snapshot_source = None;
      c_appends = counter "wal_appends_total" "Records appended to the WAL";
      c_flushes = counter "wal_flushes_total" "Group-commit flushes";
      c_flushed_bytes =
        counter "wal_flushed_bytes_total" "Bytes written by flushes";
      c_snapshots = counter "wal_snapshots_total" "Snapshots taken";
    }
  in
  (t, recovered)
