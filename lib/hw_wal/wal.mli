(** A per-table write-ahead log: append-only, length-prefixed,
    CRC-32-checksummed records with a periodic snapshot that truncates
    the log, so disk footprint is bounded by live state, not uptime.

    Payloads are opaque byte strings — the row codec lives with the
    schema layer ([Hw_hwdb.Wal_codec]), keeping this library free of
    database dependencies. Each record carries a log sequence number
    assigned at {!append}; the snapshot blob carries the highest LSN it
    covers, so replay after recovery skips records the snapshot already
    contains (which is what makes a crash {e between} snapshot publication
    and log truncation harmless).

    {2 Group commit}

    {!append} only buffers; {!flush} writes every buffered record to the
    store in one batch append (the caller batches flushes off event-loop
    ticks). A full buffer ([max_pending]) flushes inline so an idle loop
    cannot defer durability forever. The window of loss after a crash is
    therefore at most one tick of appends — stated in DESIGN.md §4j.

    {2 Truncate-at-tear recovery}

    Recovery scans the log from the front and stops at the first record
    that is short, oversized, or fails its CRC — everything before the
    tear is the durable prefix, everything after is discarded (and
    {!open_} physically truncates the blob so later appends never land
    behind garbage). Recovery never raises on malformed input; it counts
    [wal_recovery_truncated_total] instead. A snapshot that fails its own
    CRC is treated as absent ([wal_snapshot_corrupt_total]) and the full
    log replayed. *)

type recovered = {
  snapshot : string option;  (** last durable snapshot payload, if any *)
  records : string list;
      (** payloads after the snapshot, in append order *)
  next_lsn : int;  (** first LSN the reopened log will assign *)
  tail_truncated : bool;
      (** true when a torn/short/corrupt tail was cut off *)
}

type t

val open_ :
  ?metrics:Hw_metrics.Registry.t ->
  ?interpose:(string -> write:(string -> unit) -> unit) ->
  ?snapshot_every:int ->
  ?max_pending:int ->
  store:Store.t ->
  name:string ->
  unit ->
  t * recovered
(** Opens (and recovers) the WAL named [name] — blobs [name.log] and
    [name.snap] in [store]. [interpose] sits between each framed record
    and the batch buffer during {!flush}; the disk fault plane plugs in
    here (short write = a prefix passed to [write], torn write = crash
    after a prefix, bit-flip = corrupted bytes). Without it every record
    is written verbatim. If the interposer raises, the batch bytes
    already produced are persisted first — exactly the longest durable
    prefix a real crash would leave — and the exception is re-raised.

    [snapshot_every] (default 4096): after that many records since the
    last snapshot, {!flush} takes one automatically — provided a
    {!set_snapshot_source} callback is installed. [max_pending] (default
    1024) bounds the group-commit buffer. *)

val recover : store:Store.t -> name:string -> recovered
(** Read-only recovery: what {!open_} would recover, without truncating
    the blob or creating a handle. *)

val append : t -> string -> unit
(** Buffer one payload for the next {!flush}; assigns its LSN now. *)

val append_with : t -> size:int -> (Bytes.t -> int -> unit) -> unit
(** Zero-copy {!append}: [fill buf pos] writes exactly [size] payload
    bytes at [pos] directly into the framed record, skipping the
    intermediate payload string.  The durable-insert hook encodes rows
    through this; semantics are identical to {!append}. *)

val flush : t -> unit
(** Write all buffered records to the store (one batch append), then
    snapshot if due. No-op when nothing is pending. *)

val pending : t -> int
(** Buffered records not yet flushed. *)

val set_snapshot_source : t -> (unit -> string) -> unit
(** Installs the callback that renders current live state as a snapshot
    payload; enables automatic snapshots from {!flush}. *)

val snapshot : t -> unit
(** Force a snapshot now: flush pending records, atomically publish the
    snapshot blob (covering every assigned LSN), then truncate the log.
    No-op if no snapshot source is installed. *)

val name : t -> string
val next_lsn : t -> int
