(* Differential properties pinning the compiled-plan engine to the
   reference interpreter: [Plan.prepare]/[Plan.exec] and the incremental
   [Plan.Inc] view must answer exactly what [Query.exec] answers, on
   random tables, random queries and random insert/clock/clear streams.

   Generator ground rules, chosen so true equivalence is decidable:
   - only columns that exist (and, under a join, are unambiguous) are
     emitted, because [Plan.prepare] resolves names eagerly while the
     interpreter resolves lazily per row — the one documented divergence;
   - every numeric literal and cell is dyadic (k/4), so the incremental
     SUM/AVG retraction [total -. x] is exact and reproduces the
     reference's fold bit-for-bit;
   - SUM/AVG arguments stick to + - * over those dyadics (Div/Mod would
     leave the dyadic lattice); everything else (WHERE, projections,
     comparisons, HAVING) may divide, mix types and fail — both engines
     must then fail together.

   Results compare with [Value.equal] elementwise; errors compare by
   presence, not message, since window poisoning reports the oldest
   offending row while the interpreter reports the first it scans. *)

open Hw_hwdb
module Gen = QCheck.Gen

(* -- fixed schemas --------------------------------------------------- *)

let t_schema =
  [ ("a", Value.T_int); ("b", Value.T_real); ("s", Value.T_str); ("f", Value.T_bool) ]

let u_schema = [ ("c", Value.T_int); ("d", Value.T_real) ]

type cty = C_num | C_str | C_bool

type colinfo = { cq : string option; cn : string; cty : cty }

(* under a join, [ts] exists in both tables and must be qualified *)
let single_cols =
  [
    { cq = None; cn = "ts"; cty = C_num };
    { cq = None; cn = "a"; cty = C_num };
    { cq = None; cn = "b"; cty = C_num };
    { cq = None; cn = "s"; cty = C_str };
    { cq = None; cn = "f"; cty = C_bool };
  ]

let join_cols =
  [
    { cq = Some "T"; cn = "ts"; cty = C_num };
    { cq = Some "U"; cn = "ts"; cty = C_num };
    { cq = None; cn = "a"; cty = C_num };
    { cq = None; cn = "b"; cty = C_num };
    { cq = None; cn = "s"; cty = C_str };
    { cq = None; cn = "f"; cty = C_bool };
    { cq = None; cn = "c"; cty = C_num };
    { cq = None; cn = "d"; cty = C_num };
  ]

(* -- dyadic leaves --------------------------------------------------- *)

let dyadic_int = Gen.int_range (-8) 8
let dyadic_real st = float_of_int (Gen.int_range (-32) 32 st) /. 4.

let lit_num st =
  if Gen.bool st then Value.Int (dyadic_int st) else Value.Real (dyadic_real st)

let lit_str = Gen.oneofl [ Value.Str "x"; Value.Str "y"; Value.Str "z"; Value.Str "" ]
let col_expr c = Ast.Col (c.cq, c.cn)
let cols_of ty cols = List.filter (fun c -> c.cty = ty) cols

(* -- expressions ----------------------------------------------------- *)

(* [safe] restricts to + - * (dyadic-closed, never raises on numerics):
   required for SUM/AVG arguments, used nowhere else *)
let rec gen_num ~safe cols fuel st =
  let leaf st =
    if Gen.bool st then col_expr (Gen.oneofl (cols_of C_num cols) st)
    else Ast.Lit (lit_num st)
  in
  if fuel <= 0 then leaf st
  else
    Gen.frequency
      [
        (3, leaf);
        ( 4,
          fun st ->
            let ops =
              if safe then [ Ast.Add; Ast.Sub; Ast.Mul ]
              else [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod ]
            in
            let op = Gen.oneofl ops st in
            Ast.Binop (op, gen_num ~safe cols (fuel - 1) st, gen_num ~safe cols (fuel - 1) st)
        );
        (1, fun st -> Ast.Unop (Ast.Neg, gen_num ~safe cols (fuel - 1) st));
      ]
      st

let rec gen_bool cols fuel st =
  let cmp st =
    let op = Gen.oneofl [ Ast.Eq; Ast.Neq; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ] st in
    Ast.Binop (op, gen_num ~safe:false cols 1 st, gen_num ~safe:false cols 1 st)
  in
  let str_eq st =
    let c = Gen.oneofl (cols_of C_str cols) st in
    Ast.Binop ((if Gen.bool st then Ast.Eq else Ast.Neq), col_expr c, Ast.Lit (lit_str st))
  in
  let bool_leaf st =
    match cols_of C_bool cols with
    | [] -> Ast.Lit (Value.Bool (Gen.bool st))
    | bs -> if Gen.bool st then col_expr (Gen.oneofl bs st) else Ast.Lit (Value.Bool (Gen.bool st))
  in
  if fuel <= 0 then Gen.frequency [ (3, cmp); (2, str_eq); (1, bool_leaf) ] st
  else
    Gen.frequency
      [
        (3, cmp);
        (2, str_eq);
        (1, bool_leaf);
        ( 2,
          fun st ->
            let op = if Gen.bool st then Ast.And else Ast.Or in
            Ast.Binop (op, gen_bool cols (fuel - 1) st, gen_bool cols (fuel - 1) st) );
        (1, fun st -> Ast.Unop (Ast.Not, gen_bool cols (fuel - 1) st));
        (* type nonsense: AND over a number — both engines must error *)
        (1, fun st -> Ast.Binop (Ast.And, gen_num ~safe:false cols 0 st, gen_bool cols 0 st));
      ]
      st

let gen_any cols st =
  Gen.frequency
    [
      (3, gen_num ~safe:false cols 2);
      (2, gen_bool cols 1);
      (1, fun st -> col_expr (Gen.oneofl (cols_of C_str cols) st));
    ]
    st

(* -- selects --------------------------------------------------------- *)

let gen_window st =
  Gen.frequency
    [
      (3, Gen.pure Ast.W_all);
      (3, fun st -> Ast.W_range_sec (float_of_int (Gen.int_range 0 12 st) /. 2.));
      (3, fun st -> Ast.W_rows (Gen.int_range 0 12 st));
      (1, Gen.pure Ast.W_now);
    ]
    st

let gen_agg cols st =
  match Gen.int_range 0 13 st with
  | 0 | 1 -> (Ast.Count, None)
  | 2 | 3 -> (Ast.Count, Some (gen_bool cols 1 st))
  | 4 | 5 -> (Ast.Sum, Some (gen_num ~safe:true cols 2 st))
  | 6 | 7 -> (Ast.Avg, Some (gen_num ~safe:true cols 2 st))
  | 8 | 9 -> (Ast.Min, Some (gen_num ~safe:true cols 1 st))
  | 10 -> (Ast.Min, Some (col_expr (Gen.oneofl (cols_of C_str cols) st)))
  | 11 | 12 -> (Ast.Max, Some (gen_num ~safe:true cols 1 st))
  | _ -> (Ast.Sum, None) (* "SUM requires an argument": must fail identically *)

(* items + the alias names usable as ORDER BY targets *)
let gen_scalar_items cols st =
  if Gen.int_range 0 4 st = 0 then ([ Ast.Sel_star ], [])
  else begin
    let n = Gen.int_range 1 3 st in
    let items =
      List.init n (fun i ->
          let e = gen_any cols st in
          if Gen.int_range 0 3 st < 3 then
            let alias = Printf.sprintf "o%d" i in
            (Ast.Sel_expr (e, Some alias), Some alias)
          else (Ast.Sel_expr (e, None), None))
    in
    (List.map fst items, List.filter_map snd items)
  end

let gen_grouped_items cols st =
  let n_keys = Gen.int_range 0 2 st in
  let group_by =
    List.init n_keys (fun _ ->
        let c = Gen.oneofl (List.filter (fun c -> c.cty <> C_num || c.cn = "a") cols) st in
        (c.cq, c.cn))
    |> List.sort_uniq compare
  in
  let key_items =
    List.map (fun (q, n) -> (Ast.Sel_expr (Ast.Col (q, n), None), Some n)) group_by
  in
  let n_aggs = Gen.int_range 1 2 st in
  let aggs =
    List.init n_aggs (fun i ->
        let fn, arg = gen_agg cols st in
        let alias = Printf.sprintf "g%d" i in
        ((Ast.Sel_agg (fn, arg, Some alias), Some alias), (fn, arg)))
  in
  let items = key_items @ List.map (fun (it, _) -> it) aggs in
  let names = List.filter_map snd (key_items @ List.map fst aggs) in
  (List.map fst items, names, group_by, List.map snd aggs)

let gen_having group_by aggs st =
  if Gen.int_range 0 2 st > 0 then None
  else begin
    let subject =
      match (group_by, aggs) with
      | (q, n) :: _, _ when Gen.bool st -> Ast.H_col (q, n)
      | _, (fn, arg) :: _ -> Ast.H_agg (fn, arg)
      | (q, n) :: _, [] -> Ast.H_col (q, n)
      | [], [] -> Ast.H_agg (Ast.Count, None)
    in
    let op =
      (* mostly comparisons; And exercises "HAVING expects a comparison" *)
      Gen.frequency
        [
          (8, Gen.oneofl [ Ast.Eq; Ast.Neq; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ]);
          (1, Gen.pure Ast.And);
        ]
        st
    in
    let lit =
      Gen.frequency [ (6, lit_num); (1, lit_str); (1, fun st -> Value.Bool (Gen.bool st)) ] st
    in
    Some (subject, op, lit)
  end

let gen_order_limit names st =
  let order_by =
    match names with
    | [] -> None
    | _ when Gen.bool st -> None
    | _ ->
        let n = Gen.oneofl names st in
        Some ((None, n), if Gen.bool st then Ast.Asc else Ast.Desc)
  in
  let limit = if Gen.int_range 0 3 st = 0 then Some (Gen.int_range 0 5 st) else None in
  (order_by, limit)

let gen_select ~from cols st =
  let window = gen_window st in
  let where = if Gen.bool st then Some (gen_bool cols 2 st) else None in
  if Gen.bool st then begin
    let items, names = gen_scalar_items cols st in
    let order_by, limit = gen_order_limit names st in
    { Ast.items; from; window; where; group_by = []; having = None; order_by; limit }
  end
  else begin
    let items, names, group_by, aggs = gen_grouped_items cols st in
    let having = gen_having group_by aggs st in
    let order_by, limit = gen_order_limit names st in
    { Ast.items; from; window; where; group_by; having; order_by; limit }
  end

(* -- tables ---------------------------------------------------------- *)

let gen_row schema st =
  List.map
    (fun (_, ty) ->
      match ty with
      | Value.T_int -> Value.Int (dyadic_int st)
      | Value.T_real -> Value.Real (dyadic_real st)
      | Value.T_str -> lit_str st
      | Value.T_bool -> Value.Bool (Gen.bool st)
      | Value.T_ts -> Value.Ts (100. +. dyadic_real st))
    schema

let gen_ts_step st = Gen.oneofl [ 0.; 0.25; 0.5; 1. ] st

let gen_rows schema n st =
  let ts = ref 100. in
  List.init n (fun _ ->
      ts := !ts +. gen_ts_step st;
      (!ts, gen_row schema st))

let build_table ~name ~capacity schema rows =
  let tbl = Table.create ~name ~capacity schema in
  List.iter
    (fun (ts, vs) ->
      match Table.insert tbl ~now:ts vs with Ok () -> () | Error e -> failwith e)
    rows;
  tbl

let last_ts rows = List.fold_left (fun _ (ts, _) -> ts) 100. rows

(* -- result comparison ----------------------------------------------- *)

let same_rows a b =
  List.length a = List.length b
  && List.for_all2
       (fun ra rb -> List.length ra = List.length rb && List.for_all2 Value.equal ra rb)
       a b

let same_result reference candidate =
  match (reference, candidate) with
  | Error _, Error _ -> true
  | Ok a, Ok b -> a.Query.columns = b.Query.columns && same_rows a.Query.rows b.Query.rows
  | _ -> false

let show_result = function
  | Error e -> "Error: " ^ e
  | Ok rs ->
      Printf.sprintf "cols=[%s] rows=[%s]"
        (String.concat ";" rs.Query.columns)
        (String.concat " | "
           (List.map
              (fun row -> String.concat "," (List.map Value.to_string row))
              rs.Query.rows))

(* -- property 1: one-shot exec -------------------------------------- *)

type exec_case = {
  c_rows1 : (float * Value.t list) list;
  c_rows2 : (float * Value.t list) list option; (* Some -> join over T, U *)
  c_sel : Ast.select;
  c_now : float;
}

let gen_exec_case st =
  let join = Gen.int_range 0 4 st = 0 in
  if not join then begin
    let sel = gen_select ~from:[ ("T", None) ] single_cols st in
    let rows = gen_rows t_schema (Gen.int_range 0 40 st) st in
    { c_rows1 = rows; c_rows2 = None; c_sel = sel; c_now = last_ts rows +. gen_ts_step st }
  end
  else begin
    let sel = gen_select ~from:[ ("T", None); ("U", None) ] join_cols st in
    let rows1 = gen_rows t_schema (Gen.int_range 0 12 st) st in
    let rows2 = gen_rows u_schema (Gen.int_range 0 12 st) st in
    {
      c_rows1 = rows1;
      c_rows2 = Some rows2;
      c_sel = sel;
      c_now = Float.max (last_ts rows1) (last_ts rows2) +. gen_ts_step st;
    }
  end

let print_exec_case c =
  Printf.sprintf "%s\n(T: %d rows%s, now=%g)"
    (Ast.to_string (Ast.Select c.c_sel))
    (List.length c.c_rows1)
    (match c.c_rows2 with
    | None -> ""
    | Some r -> Printf.sprintf ", U: %d rows" (List.length r))
    c.c_now

let exec_case_lookup c =
  let t1 = build_table ~name:"T" ~capacity:64 t_schema c.c_rows1 in
  let t2 = Option.map (build_table ~name:"U" ~capacity:64 u_schema) c.c_rows2 in
  fun name ->
    if String.equal name "T" then Some t1
    else if String.equal name "U" then t2
    else None

let exec_prop c =
  let lookup = exec_case_lookup c in
  let reference = Query.exec ~lookup ~now:c.c_now c.c_sel in
  let candidate =
    match Plan.prepare ~lookup c.c_sel with
    | Error e -> Error e
    | Ok plan -> Plan.exec plan ~now:c.c_now
  in
  if same_result reference candidate then true
  else
    QCheck.Test.fail_reportf "interpreter: %s\nplan:        %s" (show_result reference)
      (show_result candidate)

let exec_equivalence ~count =
  QCheck.Test.make ~count ~name:"Plan.exec = Query.exec on random tables"
    (QCheck.make ~print:print_exec_case gen_exec_case)
    exec_prop

(* -- property 2: incremental stream ---------------------------------- *)

type stream_op =
  | Op_insert of Value.t list
  | Op_advance of float
  | Op_check
  | Op_clear (* exercises the rebuild-from-scan safety valve *)

type stream_case = { s_cap : int; s_sel : Ast.select; s_ops : stream_op list }

let gen_stream_case st =
  let sel = gen_select ~from:[ ("T", None) ] single_cols st in
  let cap = Gen.oneofl [ 8; 16; 64 ] st in
  let n_ops = Gen.int_range 1 60 st in
  let ops =
    List.init n_ops (fun _ ->
        Gen.frequency
          [
            (6, fun st -> Op_insert (gen_row t_schema st));
            (4, fun st -> Op_advance (Gen.oneofl [ 0.25; 0.5; 1.; 2. ] st));
            (4, Gen.pure Op_check);
            (1, Gen.pure Op_clear);
          ]
          st)
  in
  { s_cap = cap; s_sel = sel; s_ops = ops @ [ Op_check ] }

let print_stream_case c =
  let show = function
    | Op_insert vs -> "ins(" ^ String.concat "," (List.map Value.to_string vs) ^ ")"
    | Op_advance d -> Printf.sprintf "+%gs" d
    | Op_check -> "check"
    | Op_clear -> "clear"
  in
  Printf.sprintf "%s\ncap=%d ops=[%s]"
    (Ast.to_string (Ast.Select c.s_sel))
    c.s_cap
    (String.concat " " (List.map show c.s_ops))

let stream_prop c =
  let tbl = Table.create ~name:"T" ~capacity:c.s_cap t_schema in
  let lookup name = if String.equal name "T" then Some tbl else None in
  match Plan.prepare ~lookup c.s_sel with
  | Error _ -> true (* nothing to maintain; exec_prop covers prepare parity *)
  | Ok plan -> (
      match Plan.Inc.create plan with
      | None -> QCheck.Test.fail_report "single-table plan refused incremental mode"
      | Some inc ->
          ignore (Table.add_hook tbl (fun tu -> Plan.Inc.observe inc tu));
          let clock = ref 100. in
          List.iteri
            (fun i op ->
              match op with
              | Op_insert vs -> (
                  match Table.insert tbl ~now:!clock vs with
                  | Ok () -> ()
                  | Error e -> failwith e)
              | Op_advance d -> clock := !clock +. d
              | Op_clear -> Table.clear tbl
              | Op_check ->
                  let reference = Query.exec ~lookup ~now:!clock c.s_sel in
                  let candidate = Plan.Inc.result inc ~now:!clock in
                  if not (same_result reference candidate) then
                    QCheck.Test.fail_reportf "op %d (t=%g):\ninterpreter: %s\nincremental: %s" i
                      !clock (show_result reference) (show_result candidate))
            c.s_ops;
          true)

let stream_equivalence ~count =
  QCheck.Test.make ~count ~name:"Plan.Inc.result = Query.exec along insert streams"
    (QCheck.make ~print:print_stream_case gen_stream_case)
    stream_prop

(* -- seeded entry point (chaos matrix) ------------------------------- *)

let check_seeded ~seed ~count =
  let rand = Random.State.make [| seed |] in
  QCheck.Test.check_exn ~rand (exec_equivalence ~count);
  QCheck.Test.check_exn ~rand (stream_equivalence ~count:(max 1 (count / 4)))
