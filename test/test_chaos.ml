(* Chaos suite: the whole system run under seeded fault injection.

   Every test draws its fault schedule from one seed, taken from the
   CHAOS_SEED environment variable (default 7), so a CI failure is
   replayed exactly by exporting the printed seed.  The assertions are
   end-state invariants — convergence, exactly-once, no-fail-open,
   bounded state — not packet-by-packet expectations, so they hold for
   any seed the schedules were vetted on. *)

open Hw_packet
open Hw_hwdb
module Fault = Hw_fault.Fault
module Loop = Hw_sim.Event_loop
module Registry = Hw_metrics.Registry
module Counter = Hw_metrics.Counter
module Router = Hw_router.Router
module Home = Hw_router.Home

let seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 7)
  | None -> 7

let counter_value metrics name = Counter.value (Registry.counter metrics name)

let fault_count metrics kind =
  Counter.value
    (Registry.labeled_counter metrics "fault_injected_total" ~labels:[ ("kind", kind) ])

(* A lossy hwdb RPC loop: client and server wired back-to-back through
   one injector per direction, with retry timers and injected delays
   running on a shared event loop. *)
let lossy_rpc_pair ~metrics ~loop ~db ~plan_c2s ~plan_s2c ?(retry = Rpc.Client.default_retry) ()
    =
  let now () = Loop.now loop in
  let schedule d f = Loop.after loop d f in
  let c2s = Fault.create ~metrics ~schedule ~seed ~now ~point:"rpc.c2s" () in
  let s2c = Fault.create ~metrics ~schedule ~seed:(seed + 1) ~now ~point:"rpc.s2c" () in
  Fault.set_plan c2s plan_c2s;
  Fault.set_plan s2c plan_s2c;
  let client_ref = ref None in
  let server =
    Rpc.Server.create ~metrics ~db
      ~send:(fun ~to_:_ datagram ->
        Fault.apply s2c datagram
          ~deliver:(fun d ->
            match !client_ref with Some c -> Rpc.Client.handle_datagram c d | None -> ()))
      ()
  in
  let client =
    Rpc.Client.create ~metrics ~schedule ~retry ~seed
      ~send:(fun datagram ->
        Fault.apply c2s datagram ~deliver:(fun d -> Rpc.Server.handle_datagram server ~from:"c1" d))
      ()
  in
  client_ref := Some client;
  (server, client)

(* --- SUBSCRIBE under 30% datagram loss, both directions ------------- *)

let test_subscribe_under_drop () =
  let metrics = Registry.create () in
  let loop = Loop.create ~metrics () in
  let db = Database.create ~metrics ~now:(fun () -> Loop.now loop) () in
  let server, client =
    lossy_rpc_pair ~metrics ~loop ~db ~plan_c2s:[ Fault.Drop 0.3 ] ~plan_s2c:[ Fault.Drop 0.3 ]
      ()
  in
  let received = ref 0 in
  let sub =
    Rpc.Subscriber.attach ~metrics
      ~now:(fun () -> Loop.now loop)
      ~schedule:(fun d f -> Loop.after loop d f)
      ~client ~statement:"SUBSCRIBE SELECT COUNT(*) AS n FROM Flows EVERY 2 SECONDS" ~period:2.
      ~on_result:(fun _ -> incr received)
      ()
  in
  Loop.every loop 1.0 (fun () -> Database.tick db);
  Loop.run_for loop 120.;
  Alcotest.(check bool) "subscription established" true (Rpc.Subscriber.sub_id sub <> None);
  Alcotest.(check bool)
    (Printf.sprintf "publishes got through (%d)" !received)
    true (!received >= 10);
  (* renewals and re-subscribes must not multiply the server-side state *)
  Alcotest.(check int) "exactly one server subscription" 1 (Rpc.Server.subscriber_count server)

(* --- retried INSERTs apply exactly once ----------------------------- *)

let test_insert_exactly_once () =
  let metrics = Registry.create () in
  let loop = Loop.create ~metrics () in
  let db = Database.create ~metrics ~now:(fun () -> Loop.now loop) () in
  (match Database.execute db "CREATE TABLE chaos (n INTEGER) CAPACITY 64" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let retry = { Rpc.Client.default_retry with max_attempts = 10 } in
  let _server, client =
    lossy_rpc_pair ~metrics ~loop ~db
      ~plan_c2s:[ Fault.Drop 0.25; Fault.Duplicate 0.25 ]
      ~plan_s2c:[ Fault.Drop 0.25; Fault.Duplicate 0.25 ]
      ~retry ()
  in
  let acked = ref 0 in
  for i = 1 to 20 do
    Rpc.Client.request client
      (Printf.sprintf "INSERT INTO chaos VALUES (%d)" i)
      ~on_reply:(function Ok _ -> incr acked | Error _ -> ())
  done;
  Loop.run_for loop 600.;
  let rows =
    match Database.query db "SELECT n FROM chaos" with
    | Ok rs -> List.map (function [ Value.Int n ] -> n | _ -> -1) rs.Query.rows
    | Error e -> Alcotest.fail e
  in
  let distinct = List.sort_uniq compare rows in
  Alcotest.(check int) "no duplicated inserts" (List.length rows) (List.length distinct);
  Alcotest.(check int) "every acked insert applied once" !acked (List.length rows);
  Alcotest.(check int) "all inserts eventually acked" 20 !acked;
  Alcotest.(check bool) "losses forced retries" true (counter_value metrics "rpc_retries_total" > 0);
  Alcotest.(check bool) "server deduplicated retransmits" true
    (counter_value metrics "rpc_dedup_hits_total" > 0)

(* --- DHCP converges under dataplane loss and delay ------------------ *)

let test_dhcp_converges_under_faults () =
  let home = Home.standard_home ~seed () in
  Home.permit_all home;
  let faults = Router.faults (Home.router home) in
  Fault.set_plan faults.Fault.tx
    [ Fault.Drop 0.2; Fault.Delay { p = 0.3; min_s = 0.01; max_s = 0.2 } ];
  Home.run_for home 600.;
  let ips =
    List.filter_map
      (fun d ->
        Alcotest.(check bool)
          (Hw_sim.Device.name d ^ " bound")
          true
          (Hw_sim.Device.dhcp_state d = Hw_sim.Device.Bound);
        Hw_sim.Device.ip d)
      (Home.devices home)
  in
  Alcotest.(check int) "every device has an address" (List.length (Home.devices home))
    (List.length ips);
  Alcotest.(check int) "no duplicate addresses" (List.length ips)
    (List.length (List.sort_uniq compare ips));
  let metrics = Router.metrics (Home.router home) in
  Alcotest.(check bool) "frames were dropped" true (fault_count metrics "drop" > 0);
  Alcotest.(check bool) "frames were delayed" true (fault_count metrics "delay" > 0)

(* --- DNS enforcement never fails open under faults ------------------ *)

let test_dns_never_fails_open () =
  let home = Home.standard_home ~seed () in
  Home.permit_all home;
  Home.run_for home 60.;
  let rt = Home.router home in
  let kid_mac = Mac.local 2 (* kids-tablet *) in
  Hw_dns.Dns_proxy.set_policy (Router.dns rt) kid_mac Hw_dns.Dns_proxy.Block_all;
  let faults = Router.faults rt in
  Fault.set_plan faults.Fault.tx [ Fault.Drop 0.3; Fault.Corrupt 0.2 ];
  Home.run_for home 120.;
  Fault.disarm_plane faults;
  let kid =
    match Home.device_by_name home "kids-tablet" with
    | Some d -> d
    | None -> Alcotest.fail "kids-tablet missing"
  in
  (match Hw_sim.Device.ip kid with
  | None -> () (* never even bound: certainly not allowed through *)
  | Some kid_ip ->
      List.iter
        (fun dst_ip ->
          match Hw_dns.Dns_proxy.check_flow (Router.dns rt) ~src_ip:kid_ip ~dst_ip with
          | Hw_dns.Dns_proxy.Flow_allow ->
              Alcotest.fail
                (Printf.sprintf "blocked device allowed to %s under faults" (Ip.to_string dst_ip))
          | _ -> ())
        [ Ip.of_octets 93 184 216 34; Ip.of_octets 8 8 8 8; Ip.of_octets 203 0 113 7 ]);
  Alcotest.(check bool) "corruption actually exercised" true
    (fault_count (Router.metrics rt) "corrupt" > 0)

(* --- restarted DHCP server re-serves identical addresses ------------ *)

let lease_map server =
  Hw_dhcp.Lease_db.active (Hw_dhcp.Dhcp_server.lease_db server)
  |> List.filter (fun l -> l.Hw_dhcp.Lease_db.committed)
  |> List.map (fun l -> (Mac.to_string l.Hw_dhcp.Lease_db.mac, Ip.to_string l.Hw_dhcp.Lease_db.ip))
  |> List.sort compare

let test_dhcp_crash_recovery () =
  let store = Hw_wal.Store.mem () in
  let home = Home.standard_home ~seed ~wal_store:store () in
  Home.permit_all home;
  Home.run_for home 120.;
  let rt1 = Home.router home in
  let before = lease_map (Router.dhcp rt1) in
  Alcotest.(check bool) "leases were granted before the crash" true (List.length before >= 6);
  (* group-commit the last tick's appends, then "crash": the router
     process is gone; only the WAL store survives *)
  Database.flush_wal (Router.db rt1);
  let loop2 = Loop.create ~start:(Home.now home) () in
  let rt2 = Router.create ~wal_store:store ~loop:loop2 () in
  let after = lease_map (Router.dhcp rt2) in
  Alcotest.(check (list (pair string string))) "identical mac->ip bindings" before after;
  Alcotest.(check int) "recovery counted"
    (List.length before)
    (counter_value (Router.metrics rt2) "dhcp_leases_recovered_total");
  (* the restored devices are still permitted: their next REQUEST renews *)
  List.iter
    (fun (mac, _) ->
      match Hw_dhcp.Dhcp_server.device_state (Router.dhcp rt2) (Option.get (Mac.of_string mac)) with
      | Hw_dhcp.Dhcp_server.Permitted -> ()
      | _ -> Alcotest.fail (mac ^ " not permitted after recovery"))
    before;
  (* regression: the deprecated ?restore_leases_from shim must rebuild
     exactly the state the WAL path does *)
  let loop3 = Loop.create ~start:(Home.now home) () in
  let rt3 = Router.create ~restore_leases_from:(Router.db rt1) ~loop:loop3 () in
  Alcotest.(check (list (pair string string))) "shim path matches WAL path" after
    (lease_map (Router.dhcp rt3));
  let scan_rows db name =
    match Database.table db name with Some t -> Table.scan t | None -> []
  in
  List.iter
    (fun name ->
      Alcotest.(check int)
        (name ^ ": shim recovers the same rows")
        (List.length (scan_rows (Router.db rt2) name))
        (List.length (scan_rows (Router.db rt3) name)))
    [ "Leases"; "Policies" ]

(* --- torn/corrupt/crashing WAL writes; recover the durable prefix --- *)

let test_disk_fault_crash_recovery () =
  let msg m = Printf.sprintf "seed %d: %s" seed m in
  let store = Hw_wal.Store.mem () in
  let home = Home.standard_home ~seed ~wal_store:store () in
  Home.permit_all home;
  Home.run_for home 120.;
  let rt1 = Home.router home in
  let metrics1 = Router.metrics rt1 in
  let faults = Router.faults rt1 in
  let before = lease_map (Router.dhcp rt1) in
  Alcotest.(check bool) (msg "leases granted before the faults") true
    (List.length before >= 6);
  (* the storage stack starts failing mid-write: short writes, bit flips
     and crash-at-boundary.  The event loop absorbs the injected crashes
     (the timer stays alive), modelling a router that limps on with a
     dying disk until we kill it below.  Keep the durable tables chatty
     through the window — lease renewals of real bindings plus policy
     tokens — so every group commit passes through the injector. *)
  Fault.set_plan faults.Fault.disk [ Fault.Drop 0.2; Fault.Corrupt 0.1; Fault.Crash 0.1 ];
  for i = 1 to 60 do
    (match List.nth_opt before (i mod List.length before) with
    | Some (mac, ip) ->
        Database.record_lease (Router.db rt1) ~mac ~ip ~hostname:"chaos" ~action:"renew"
    | None -> ());
    Database.record_policy (Router.db rt1) ~kind:"token"
      ~id:(Printf.sprintf "chaos%d" i) ~payload:"" ~action:"set";
    Home.run_for home 1.0
  done;
  Fault.disarm_plane faults;
  Alcotest.(check bool) (msg "disk faults actually fired") true
    (fault_count metrics1 "drop" + fault_count metrics1 "corrupt"
     + fault_count metrics1 "crash"
    > 0);
  (* every (mac, ip) the dying router ever granted or renewed: whatever
     the recovery yields must come from this set — a durable prefix can
     be stale, never invented *)
  let ever_bound =
    match Database.table (Router.db rt1) "Leases" with
    | None -> []
    | Some t ->
        List.filter_map
          (fun (tu : Value.tuple) ->
            match tu.Value.values with
            | [| Value.Str mac; Value.Str ip; _; Value.Str action |]
              when action = "grant" || action = "renew" ->
                Some (mac, ip)
            | _ -> None)
          (Table.scan t)
  in
  Alcotest.(check bool) (msg "bindings existed before the kill") true
    (List.length ever_bound >= 6);
  (* kill mid-flight: pending appends die with the process.  Recovery
     must truncate at the tear and never raise. *)
  let loop2 = Loop.create ~start:(Home.now home) () in
  let rt2 = Router.create ~wal_store:store ~loop:loop2 () in
  let recovered = lease_map (Router.dhcp rt2) in
  List.iter
    (fun (mac, ip) ->
      Alcotest.(check bool)
        (msg (Printf.sprintf "recovered %s -> %s was really granted" mac ip))
        true
        (List.mem (mac, ip) ever_bound))
    recovered;
  (* a full restarted home on the same store honours the recovered
     bindings: each such device renews its old address *)
  let home2 = Home.standard_home ~seed ~start:(Home.now home) ~wal_store:store () in
  Home.permit_all home2;
  Home.run_for home2 120.;
  let final = lease_map (Router.dhcp (Home.router home2)) in
  List.iter
    (fun (mac, ip) ->
      match List.assoc_opt mac final with
      | Some ip' -> Alcotest.(check string) (msg (mac ^ " keeps its recovered address")) ip ip'
      | None -> Alcotest.fail (msg (mac ^ " vanished after restart")))
    recovered

(* --- control-channel partition: detect, reconnect, resync ----------- *)

let test_channel_partition_recovery () =
  let home = Home.standard_home ~seed () in
  Home.permit_all home;
  Home.run_for home 30.;
  let rt = Home.router home in
  let faults = Router.faults rt in
  let t0 = Home.now home in
  Fault.set_plan faults.Fault.chan [ Fault.Partition { from_s = t0; until_s = t0 +. 200. } ];
  Home.run_for home 400.;
  Fault.disarm_plane faults;
  let metrics = Router.metrics rt in
  Alcotest.(check bool) "missed echoes detected" true
    (counter_value metrics "echo_timeouts_total" >= 1);
  (* the supervisor re-established exactly one live, feature-complete
     connection *)
  let conns = Hw_controller.Controller.connections (Router.controller rt) in
  Alcotest.(check int) "one connection after recovery" 1 (List.length conns);
  Alcotest.(check bool) "handshake completed" true
    (List.for_all
       (fun c -> Hw_controller.Controller.conn_features c <> None)
       conns);
  (* and the network is functional again: a brand-new device can join *)
  Hw_dhcp.Dhcp_server.permit (Router.dhcp rt) (Mac.local 9);
  let late =
    Home.add_device home
      (Hw_sim.Device.wireless ~distance_m:5. ~name:"late-joiner" ~mac:(Mac.local 9)
         [ Hw_sim.App_profile.web ])
  in
  Home.run_for home 120.;
  Alcotest.(check bool) "late joiner bound after recovery" true
    (Hw_sim.Device.dhcp_state late = Hw_sim.Device.Bound)

(* --- dead subscribers are evicted: client_subs is bounded ----------- *)

let test_subscriber_eviction_bounds_leak () =
  let now = ref 0. in
  let metrics = Registry.create () in
  let db = Database.create ~metrics ~now:(fun () -> !now) () in
  let server = Rpc.Server.create ~metrics ~db ~send:(fun ~to_:_ _ -> ()) () in
  (* a renewal is a fresh request (new seq); only retransmits reuse one,
     and those are absorbed by the dedup window without renewing *)
  let next_seq = ref 0l in
  let subscribe i =
    next_seq := Int32.add !next_seq 1l;
    Rpc.Server.handle_datagram server
      ~from:(Printf.sprintf "dead-client-%d" i)
      (Rpc.encode
         (Rpc.Request
            {
              seq = !next_seq;
              statement = "SUBSCRIBE SELECT COUNT(*) AS n FROM Flows EVERY 1 SECONDS";
              ctx = None;
            }))
  in
  for i = 1 to 25 do
    subscribe i
  done;
  Alcotest.(check int) "all subscribed" 25 (Rpc.Server.subscriber_count server);
  (* none of them ever renews; the lease is 4 periods, so a few ticks
     past expiry every one must be gone *)
  for t = 1 to 8 do
    now := float_of_int t;
    Database.tick db
  done;
  Alcotest.(check int) "every dead subscriber evicted" 0 (Rpc.Server.subscriber_count server);
  Alcotest.(check int) "evictions counted" 25 (counter_value metrics "subs_evicted_total");
  Alcotest.(check int) "database subscriptions reclaimed" 0 (Database.subscription_count db);
  (* a live subscriber that keeps renewing is never evicted *)
  subscribe 99;
  for t = 9 to 20 do
    now := float_of_int t;
    subscribe 99 (* renewal: same address, same statement *);
    Database.tick db
  done;
  Alcotest.(check int) "renewing subscriber survives" 1 (Rpc.Server.subscriber_count server)

(* --- RPC server fuzz: hostile datagrams never take the server down -- *)

let test_rpc_server_fuzz () =
  let prng = Hw_sim.Prng.create ~seed in
  let now = ref 0. in
  let metrics = Registry.create () in
  let db = Database.create ~metrics ~now:(fun () -> !now) () in
  let replies = ref [] in
  let server =
    Rpc.Server.create ~metrics ~db
      ~send:(fun ~to_ datagram -> if to_ = "good-client" then replies := datagram :: !replies)
      ()
  in
  let valid = Rpc.encode (Rpc.Request { seq = 7l; statement = "SELECT mac FROM Leases"; ctx = None }) in
  let random_bytes n = String.init n (fun _ -> Char.chr (Hw_sim.Prng.int prng 256)) in
  let dropped_before = counter_value metrics "rpc_datagrams_dropped_total" in
  for _ = 1 to 500 do
    let datagram =
      match Hw_sim.Prng.int prng 4 with
      | 0 -> random_bytes (Hw_sim.Prng.int prng 64)
      | 1 ->
          (* truncated valid encoding *)
          String.sub valid 0 (Hw_sim.Prng.int prng (String.length valid))
      | 2 ->
          (* oversized garbage *)
          random_bytes (4096 + Hw_sim.Prng.int prng 65536)
      | _ ->
          (* valid header, corrupted body *)
          let b = Bytes.of_string valid in
          let i = Hw_sim.Prng.int prng (Bytes.length b) in
          Bytes.set b i (Char.chr (Hw_sim.Prng.int prng 256));
          Bytes.to_string b
    in
    (* must never raise — UDP garbage is dropped, not fatal *)
    Rpc.Server.handle_datagram server ~from:"fuzzer" datagram
  done;
  Alcotest.(check bool) "garbage counted as dropped" true
    (counter_value metrics "rpc_datagrams_dropped_total" > dropped_before);
  (* the server still works for well-formed clients afterwards *)
  Rpc.Server.handle_datagram server ~from:"good-client" valid;
  match List.rev !replies with
  | reply :: _ -> (
      match Rpc.decode reply with
      | Ok (Rpc.Response_ok { seq = 7l; _ }) -> ()
      | _ -> Alcotest.fail "expected a well-formed OK response after the fuzz run")
  | [] -> Alcotest.fail "no response to a valid request after the fuzz run"

(* --- injected handler crashes never kill a periodic timer ----------- *)

let test_timer_survives_injected_crashes () =
  let metrics = Registry.create () in
  let loop = Loop.create ~metrics () in
  let inj = Fault.create ~metrics ~seed ~now:(fun () -> Loop.now loop) ~point:"handler" () in
  Fault.set_plan inj [ Fault.Crash 0.5 ];
  let completed = ref 0 in
  Loop.every loop 1.0 (fun () ->
      Fault.maybe_crash inj;
      incr completed);
  Loop.run_for loop 100.;
  let crashes = fault_count metrics "crash" in
  Alcotest.(check bool) "some iterations crashed" true (crashes > 0);
  Alcotest.(check bool) "some iterations completed" true (!completed > 0);
  Alcotest.(check int) "timer fired every period regardless" 100 (!completed + crashes);
  Alcotest.(check int) "crashes surfaced in the error counter" crashes
    (counter_value metrics "event_loop_timer_errors_total")

(* --- compiled plans stay pinned to the interpreter on every seed ----- *)

let test_plan_differential_seeded () = Plan_diff.check_seeded ~seed ~count:300

let () =
  Printf.printf "CHAOS_SEED=%d (export this to replay a failure)\n%!" seed;
  Alcotest.run "hw_chaos"
    [
      ( "plans",
        [
          Alcotest.test_case "plan/interpreter differential" `Quick test_plan_differential_seeded;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "subscribe under 30% drop" `Quick test_subscribe_under_drop;
          Alcotest.test_case "retried INSERTs exactly-once" `Quick test_insert_exactly_once;
          Alcotest.test_case "server fuzz" `Quick test_rpc_server_fuzz;
          Alcotest.test_case "dead-subscriber eviction" `Quick test_subscriber_eviction_bounds_leak;
        ] );
      ( "home",
        [
          Alcotest.test_case "dhcp converges under drop+delay" `Slow
            test_dhcp_converges_under_faults;
          Alcotest.test_case "dns never fails open" `Slow test_dns_never_fails_open;
          Alcotest.test_case "dhcp crash recovery" `Slow test_dhcp_crash_recovery;
          Alcotest.test_case "disk-fault crash recovery" `Slow
            test_disk_fault_crash_recovery;
          Alcotest.test_case "channel partition recovery" `Slow test_channel_partition_recovery;
        ] );
      ( "timers",
        [
          Alcotest.test_case "every survives injected crashes" `Quick
            test_timer_survives_injected_crashes;
        ] );
    ]
