(* hw_control_api: HTTP codec, router, and the REST surface over fake ops *)

open Hw_control_api
module Json = Hw_json.Json

(* ------------------------------------------------------------------ *)
(* HTTP codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_request_roundtrip () =
  let req =
    Http.request ~headers:[ ("x-test", "yes") ] ~body:"{\"a\":1}" Http.POST
      "/api/devices/aa:bb/permit?force=1&note=hello%20world"
  in
  let raw = Http.encode_request req in
  match Http.decode_request raw with
  | Ok req' ->
      Alcotest.(check string) "path" "/api/devices/aa:bb/permit" req'.Http.path;
      Alcotest.(check bool) "query decoded" true
        (List.assoc_opt "note" req'.Http.query = Some "hello world");
      Alcotest.(check string) "body" "{\"a\":1}" req'.Http.body;
      Alcotest.(check bool) "header" true (Http.header "X-Test" req' = Some "yes")
  | Error e -> Alcotest.fail e

let test_response_roundtrip () =
  let resp = Http.json_response ~status:201 (Json.Obj [ ("ok", Json.Bool true) ]) in
  match Http.decode_response (Http.encode_response resp) with
  | Ok resp' ->
      Alcotest.(check int) "status" 201 resp'.Http.status;
      Alcotest.(check string) "body" "{\"ok\":true}" resp'.Http.body
  | Error e -> Alcotest.fail e

let test_decode_request_errors () =
  List.iter
    (fun raw ->
      match Http.decode_request raw with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" raw)
    [
      "";
      "GET /x HTTP/1.1";                         (* no header terminator *)
      "BREW /x HTTP/1.1\r\n\r\n";                (* unknown method *)
      "GET\r\n\r\n";                             (* malformed request line *)
      "GET /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort";  (* truncated body *)
    ]

let test_url_codec () =
  Alcotest.(check string) "decode" "a b+c/é" (Http.url_decode "a%20b%2Bc/%C3%A9");
  Alcotest.(check string) "plus is space" "a b" (Http.url_decode "a+b");
  Alcotest.(check string) "encode keeps safe" "/api/x-y_z.1~" (Http.url_encode "/api/x-y_z.1~");
  Alcotest.(check string) "encode escapes" "a%20b" (Http.url_encode "a b")

(* ------------------------------------------------------------------ *)
(* Router                                                              *)
(* ------------------------------------------------------------------ *)

let test_router_dispatch () =
  let r = Router.create () in
  Router.route r Http.GET "/api/things" (fun _req _p -> Http.response ~body:"list" 200);
  Router.route r Http.GET "/api/things/:id" (fun _req p ->
      Http.response ~body:("got " ^ List.assoc "id" p) 200);
  Router.route r Http.DELETE "/api/things/:id" (fun _req _p -> Http.response 204);
  let get path = Router.dispatch r (Http.request Http.GET path) in
  Alcotest.(check string) "static" "list" (get "/api/things").Http.body;
  Alcotest.(check string) "param" "got 42" (get "/api/things/42").Http.body;
  Alcotest.(check int) "404" 404 (get "/api/nope").Http.status;
  Alcotest.(check int) "405 wrong method" 405
    (Router.dispatch r (Http.request Http.POST "/api/things/42")).Http.status;
  Alcotest.(check int) "delete" 204
    (Router.dispatch r (Http.request Http.DELETE "/api/things/42")).Http.status

let test_router_405_allow_header () =
  let r = Router.create () in
  Router.route r Http.GET "/api/things/:id" (fun _req _p -> Http.response 200);
  Router.route r Http.DELETE "/api/things/:id" (fun _req _p -> Http.response 204);
  Router.route r Http.POST "/api/actions" (fun _req _p -> Http.response 200);
  let resp = Router.dispatch r (Http.request Http.POST "/api/things/42") in
  Alcotest.(check int) "known path, wrong method" 405 resp.Http.status;
  Alcotest.(check (option string)) "Allow lists every accepted method" (Some "DELETE, GET")
    (List.assoc_opt "allow" resp.Http.headers);
  let resp = Router.dispatch r (Http.request Http.GET "/api/actions") in
  Alcotest.(check (option string)) "single-method Allow" (Some "POST")
    (List.assoc_opt "allow" resp.Http.headers);
  (* an unknown path must stay a 404, not turn into a 405 *)
  let resp = Router.dispatch r (Http.request Http.POST "/api/nothing") in
  Alcotest.(check int) "unknown path" 404 resp.Http.status;
  Alcotest.(check (option string)) "no Allow on 404" None
    (List.assoc_opt "allow" resp.Http.headers)

let test_router_handler_exception_is_500 () =
  let r = Router.create () in
  Router.route r Http.GET "/boom" (fun _ _ -> failwith "bug");
  Alcotest.(check int) "500" 500 (Router.dispatch r (Http.request Http.GET "/boom")).Http.status

let test_handle_raw_bad_request () =
  let r = Router.create () in
  let out = Router.handle_raw r "not http at all" in
  Alcotest.(check bool) "400 response" true
    (match Http.decode_response out with Ok resp -> resp.Http.status = 400 | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* REST surface over scripted ops                                      *)
(* ------------------------------------------------------------------ *)

type calls = { mutable permits : string list; mutable denies : string list; mutable rules : Json.t list }

let fake_api () =
  let calls = { permits = []; denies = []; rules = [] } in
  let ops =
    {
      Control_api.status = (fun () -> Json.Obj [ ("router", Json.String "fake") ]);
      list_devices =
        (fun () ->
          Json.List
            [
              Json.Obj
                [
                  ("mac", Json.String "aa:bb:cc:dd:ee:01");
                  ("state", Json.String "pending");
                  ("hostname", Json.String "h1");
                  ("metadata", Json.String "");
                ];
            ]);
      permit_device =
        (fun mac ->
          calls.permits <- mac :: calls.permits;
          if mac = "bad" then Error "bad MAC bad" else Ok ());
      deny_device =
        (fun mac ->
          calls.denies <- mac :: calls.denies;
          Ok ());
      forget_device = (fun _ -> Ok ());
      set_device_metadata = (fun _ _ -> Ok ());
      list_leases = (fun () -> Json.List []);
      list_policies = (fun () -> Json.List calls.rules);
      add_policy =
        (fun json ->
          calls.rules <- json :: calls.rules;
          Ok json);
      delete_policy = (fun id -> if id = "known" then Ok () else Error "no rule");
      list_groups = (fun () -> Json.Obj []);
      set_group = (fun _ _ -> Ok ());
      usb_event = (fun _ -> Ok (Json.Obj [ ("token", Json.String "t") ]));
      hwdb_query =
        (fun q ->
          if q = "bad" then Error "syntax" else Ok (Json.Obj [ ("echo", Json.String q) ]));
      dns_stats = (fun () -> Json.Obj [ ("queries", Json.Int 0) ]);
      metrics_text = (fun () -> "# TYPE fake_counter counter\nfake_counter 1\n");
      list_traces = (fun () -> Json.List []);
      get_trace = (fun id -> Error (Printf.sprintf "no trace %s" id));
    }
  in
  (Control_api.build ops, calls)

let test_api_devices_and_permit () =
  let api, calls = fake_api () in
  let resp = Control_api.handle api (Http.request Http.GET "/api/devices") in
  Alcotest.(check int) "devices 200" 200 resp.Http.status;
  Alcotest.(check bool) "payload is list" true
    (match Json.of_string resp.Http.body with Json.List [ _ ] -> true | _ -> false);
  let resp =
    Control_api.handle api (Http.request Http.POST "/api/devices/aa:bb:cc:dd:ee:01/permit")
  in
  Alcotest.(check int) "permit 200" 200 resp.Http.status;
  Alcotest.(check (list string)) "ops called" [ "aa:bb:cc:dd:ee:01" ] calls.permits;
  let resp = Control_api.handle api (Http.request Http.POST "/api/devices/bad/permit") in
  Alcotest.(check int) "bad mac 400" 400 resp.Http.status

let test_api_metadata_validation () =
  let api, _ = fake_api () in
  let good =
    Control_api.handle api
      (Http.request ~body:"{\"name\": \"Tom's laptop\"}" Http.PUT "/api/devices/aa/metadata")
  in
  Alcotest.(check int) "good 200" 200 good.Http.status;
  let bad =
    Control_api.handle api (Http.request ~body:"{\"nope\": 1}" Http.PUT "/api/devices/aa/metadata")
  in
  Alcotest.(check int) "bad shape 400" 400 bad.Http.status;
  let not_json =
    Control_api.handle api (Http.request ~body:"{{{" Http.PUT "/api/devices/aa/metadata")
  in
  Alcotest.(check int) "not json 400" 400 not_json.Http.status

let test_api_policies () =
  let api, calls = fake_api () in
  let rule = "{\"id\":\"r1\",\"group\":\"kids\",\"services\":[]}" in
  let resp = Control_api.handle api (Http.request ~body:rule Http.POST "/api/policies") in
  Alcotest.(check int) "created 201" 201 resp.Http.status;
  Alcotest.(check int) "stored" 1 (List.length calls.rules);
  let resp = Control_api.handle api (Http.request Http.DELETE "/api/policies/known") in
  Alcotest.(check int) "delete ok" 200 resp.Http.status;
  let resp = Control_api.handle api (Http.request Http.DELETE "/api/policies/unknown") in
  Alcotest.(check int) "delete unknown 400" 400 resp.Http.status

let test_api_groups_validation () =
  let api, _ = fake_api () in
  let ok =
    Control_api.handle api
      (Http.request ~body:"{\"members\": [\"aa:bb\"]}" Http.PUT "/api/groups/kids")
  in
  Alcotest.(check int) "ok" 200 ok.Http.status;
  let bad =
    Control_api.handle api (Http.request ~body:"{\"members\": [1,2]}" Http.PUT "/api/groups/kids")
  in
  Alcotest.(check int) "non-string members" 400 bad.Http.status

let test_api_hwdb_query_param () =
  let api, _ = fake_api () in
  let resp = Control_api.handle api (Http.request Http.GET "/api/hwdb?q=SELECT%201") in
  Alcotest.(check int) "ok" 200 resp.Http.status;
  Alcotest.(check bool) "echoed" true
    (Json.equal (Json.of_string resp.Http.body) (Json.Obj [ ("echo", Json.String "SELECT 1") ]));
  let resp = Control_api.handle api (Http.request Http.GET "/api/hwdb") in
  Alcotest.(check int) "missing q" 400 resp.Http.status;
  let resp = Control_api.handle api (Http.request Http.GET "/api/hwdb?q=bad") in
  Alcotest.(check int) "query error" 400 resp.Http.status

let test_api_metrics_endpoint () =
  let api, _ = fake_api () in
  let resp = Control_api.handle api (Http.request Http.GET "/metrics") in
  Alcotest.(check int) "ok" 200 resp.Http.status;
  Alcotest.(check (option string)) "prometheus content type"
    (Some "text/plain; version=0.0.4")
    (List.assoc_opt "content-type" resp.Http.headers);
  Alcotest.(check string) "exposition body passed through verbatim"
    "# TYPE fake_counter counter\nfake_counter 1\n" resp.Http.body

let test_api_raw_roundtrip () =
  let api, _ = fake_api () in
  let raw = Http.encode_request (Http.request Http.GET "/api/status") in
  let out = Control_api.handle_raw api raw in
  match Http.decode_response out with
  | Ok resp ->
      Alcotest.(check int) "200 over the wire" 200 resp.Http.status;
      Alcotest.(check bool) "body" true
        (Json.equal (Json.of_string resp.Http.body) (Json.Obj [ ("router", Json.String "fake") ]))
  | Error e -> Alcotest.fail e

let prop_url_roundtrip =
  QCheck.Test.make ~name:"url encode/decode roundtrip" ~count:300 QCheck.printable_string
    (fun s -> Http.url_decode (Http.url_encode s) = s)

let () =
  Alcotest.run "hw_control_api"
    [
      ( "http",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
          Alcotest.test_case "decode errors" `Quick test_decode_request_errors;
          Alcotest.test_case "url codec" `Quick test_url_codec;
          QCheck_alcotest.to_alcotest prop_url_roundtrip;
        ] );
      ( "router",
        [
          Alcotest.test_case "dispatch" `Quick test_router_dispatch;
          Alcotest.test_case "405 carries Allow" `Quick test_router_405_allow_header;
          Alcotest.test_case "exception is 500" `Quick test_router_handler_exception_is_500;
          Alcotest.test_case "raw bad request" `Quick test_handle_raw_bad_request;
        ] );
      ( "rest",
        [
          Alcotest.test_case "devices + permit" `Quick test_api_devices_and_permit;
          Alcotest.test_case "metadata validation" `Quick test_api_metadata_validation;
          Alcotest.test_case "policies" `Quick test_api_policies;
          Alcotest.test_case "groups validation" `Quick test_api_groups_validation;
          Alcotest.test_case "hwdb query param" `Quick test_api_hwdb_query_param;
          Alcotest.test_case "metrics endpoint" `Quick test_api_metrics_endpoint;
          Alcotest.test_case "raw roundtrip" `Quick test_api_raw_roundtrip;
        ] );
    ]
