(* hw_controller: handshake, event dispatch, component chaining *)

open Hw_packet
open Hw_openflow
module Controller = Hw_controller.Controller

let mac_a = Mac.of_string_exn "aa:bb:cc:dd:ee:01"
let mac_b = Mac.of_string_exn "aa:bb:cc:dd:ee:02"

(* A fake switch: records controller->switch messages and lets the test
   inject switch->controller messages. *)
type fake_switch = {
  ctrl : Controller.t;
  conn : Controller.conn;
  received : (int32 * Ofp_message.t) list ref;
  mutable next_xid : int32;
}

let make_fake () =
  let received = ref [] in
  let framing = Ofp_message.Framing.create () in
  let ctrl = Controller.create ~now:(fun () -> 0.) () in
  let conn =
    Controller.attach_switch ctrl ~send:(fun bytes ->
        Ofp_message.Framing.input framing bytes;
        List.iter
          (function
            | Ok msg -> received := msg :: !received
            | Error e -> Alcotest.failf "controller sent bad bytes: %s" e)
          (Ofp_message.Framing.pop_all framing))
  in
  { ctrl; conn; received; next_xid = 100l }

let inject fs msg =
  fs.next_xid <- Int32.add fs.next_xid 1l;
  Controller.input fs.ctrl fs.conn (Ofp_message.encode ~xid:fs.next_xid msg)

let inject_xid fs xid msg = Controller.input fs.ctrl fs.conn (Ofp_message.encode ~xid msg)

let features =
  {
    Ofp_message.datapath_id = 7L;
    n_buffers = 256l;
    n_tables = 1;
    capabilities = 0l;
    supported_actions = 0l;
    ports = [];
  }

let handshake fs =
  inject fs Ofp_message.Hello;
  (* controller replies hello + features_request *)
  inject fs (Ofp_message.Features_reply features)

let test_handshake () =
  let fs = make_fake () in
  let joined = ref None in
  Controller.on_datapath_join fs.ctrl ~name:"t" (fun _conn f ->
      joined := Some f.Ofp_message.datapath_id);
  handshake fs;
  Alcotest.(check bool) "join fired" true (!joined = Some 7L);
  Alcotest.(check bool) "dpid recorded" true (Controller.conn_dpid fs.conn = Some 7L);
  let sent = List.rev_map snd !(fs.received) in
  Alcotest.(check bool) "hello sent" true
    (List.exists (function Ofp_message.Hello -> true | _ -> false) sent);
  Alcotest.(check bool) "features requested" true
    (List.exists (function Ofp_message.Features_request -> true | _ -> false) sent);
  Alcotest.(check bool) "config set" true
    (List.exists (function Ofp_message.Set_config _ -> true | _ -> false) sent)

let test_echo_handled () =
  let fs = make_fake () in
  inject_xid fs 55l (Ofp_message.Echo_request "keepalive");
  match !(fs.received) with
  | [ (55l, Ofp_message.Echo_reply "keepalive") ] -> ()
  | _ -> Alcotest.fail "echo not answered"

let packet_in_msg ?(in_port = 1) () =
  let frame =
    Packet.encode
      (Packet.tcp_packet ~src_mac:mac_a ~dst_mac:mac_b ~src_ip:(Ip.of_octets 10 0 0 2)
         ~dst_ip:(Ip.of_octets 10 0 0 3) ~src_port:1000 ~dst_port:80 "x")
  in
  Ofp_message.Packet_in
    {
      Ofp_message.buffer_id = Some 5l;
      total_len = String.length frame;
      in_port;
      reason = Ofp_message.No_match;
      data = frame;
    }

let test_packet_in_dispatch_and_parse () =
  let fs = make_fake () in
  let seen = ref [] in
  Controller.on_packet_in fs.ctrl ~name:"a" (fun ev ->
      seen := ("a", ev.Controller.fields) :: !seen;
      Controller.Continue);
  Controller.on_packet_in fs.ctrl ~name:"b" (fun _ ->
      seen := ("b", None) :: !seen;
      Controller.Stop);
  Controller.on_packet_in fs.ctrl ~name:"c" (fun _ ->
      seen := ("c", None) :: !seen;
      Controller.Continue);
  handshake fs;
  inject fs (packet_in_msg ());
  let names = List.rev_map fst !seen in
  Alcotest.(check (list string)) "stop halts the chain" [ "a"; "b" ] names;
  (* parsed fields available to handler a *)
  (match List.assoc_opt "a" (List.rev !seen) with
  | Some (Some f) -> Alcotest.(check int) "tp_dst" 80 f.Ofp_match.f_tp_dst
  | _ -> Alcotest.fail "fields not parsed");
  Alcotest.(check int) "counted" 1 (Controller.packet_in_total fs.ctrl)

let test_handler_exception_isolated () =
  let fs = make_fake () in
  let reached = ref false in
  Controller.on_packet_in fs.ctrl ~name:"boom" (fun _ -> failwith "component bug");
  Controller.on_packet_in fs.ctrl ~name:"after" (fun _ ->
      reached := true;
      Controller.Stop);
  handshake fs;
  inject fs (packet_in_msg ());
  Alcotest.(check bool) "later handlers still run" true !reached

let test_stats_callback_correlation () =
  let fs = make_fake () in
  handshake fs;
  fs.received := [];
  let got = ref None in
  Controller.request_stats fs.conn Ofp_message.Desc_request (fun reply -> got := Some reply);
  (* find the xid the controller used *)
  let xid =
    match !(fs.received) with
    | [ (xid, Ofp_message.Stats_request Ofp_message.Desc_request) ] -> xid
    | _ -> Alcotest.fail "stats request not sent"
  in
  (* reply with a different xid first: must not fire *)
  inject_xid fs (Int32.add xid 7l)
    (Ofp_message.Stats_reply (Ofp_message.Desc_reply Hw_datapath.Datapath.stats_description));
  Alcotest.(check bool) "wrong xid ignored" true (!got = None);
  inject_xid fs xid
    (Ofp_message.Stats_reply (Ofp_message.Desc_reply Hw_datapath.Datapath.stats_description));
  Alcotest.(check bool) "right xid fires" true (!got <> None)

let test_barrier_callback () =
  let fs = make_fake () in
  handshake fs;
  fs.received := [];
  let fired = ref false in
  Controller.barrier fs.conn (fun () -> fired := true);
  let xid =
    match !(fs.received) with
    | [ (xid, Ofp_message.Barrier_request) ] -> xid
    | _ -> Alcotest.fail "barrier not sent"
  in
  inject_xid fs xid Ofp_message.Barrier_reply;
  Alcotest.(check bool) "barrier callback" true !fired

let test_flow_removed_event () =
  let fs = make_fake () in
  let got = ref None in
  Controller.on_flow_removed fs.ctrl ~name:"t" (fun _conn fr ->
      got := Some fr.Ofp_message.byte_count);
  handshake fs;
  inject fs
    (Ofp_message.Flow_removed
       {
         Ofp_message.fr_match = Ofp_match.wildcard_all;
         fr_cookie = 0L;
         fr_priority = 0;
         fr_reason = Ofp_message.Removed_idle_timeout;
         duration_sec = 0l;
         duration_nsec = 0l;
         fr_idle_timeout = 0;
         packet_count = 0L;
         byte_count = 1234L;
       });
  Alcotest.(check bool) "fired with counts" true (!got = Some 1234L)

let test_port_status_event () =
  let fs = make_fake () in
  let got = ref None in
  Controller.on_port_status fs.ctrl ~name:"t" (fun _conn reason p ->
      got := Some (reason, p.Ofp_message.port_no));
  handshake fs;
  inject fs
    (Ofp_message.Port_status
       (Ofp_message.Port_add, Ofp_message.phy_port ~port_no:4 ~hw_addr:mac_a ~name:"eth4"));
  Alcotest.(check bool) "port add observed" true (!got = Some (Ofp_message.Port_add, 4))

let test_detach_fires_leave () =
  let fs = make_fake () in
  let left = ref false in
  Controller.on_datapath_leave fs.ctrl ~name:"t" (fun _ -> left := true);
  handshake fs;
  Alcotest.(check int) "one connection" 1 (List.length (Controller.connections fs.ctrl));
  Controller.detach_switch fs.ctrl fs.conn;
  Alcotest.(check bool) "leave fired" true !left;
  Alcotest.(check int) "no connections" 0 (List.length (Controller.connections fs.ctrl))

let test_bad_frame_detaches () =
  let fs = make_fake () in
  let left = ref false in
  Controller.on_datapath_leave fs.ctrl ~name:"t" (fun _ -> left := true);
  handshake fs;
  Controller.input fs.ctrl fs.conn "\x07\x00\x00\x08\x00\x00\x00\x00";
  Alcotest.(check bool) "bad version detaches" true !left

let test_two_switches_one_controller () =
  (* NOX manages multiple datapaths; events carry the right connection *)
  let received_a = ref [] and received_b = ref [] in
  let ctrl = Controller.create ~now:(fun () -> 0.) () in
  let framing_a = Ofp_message.Framing.create () and framing_b = Ofp_message.Framing.create () in
  let collect framing sink bytes =
    Ofp_message.Framing.input framing bytes;
    List.iter
      (function Ok msg -> sink := msg :: !sink | Error e -> Alcotest.failf "bad: %s" e)
      (Ofp_message.Framing.pop_all framing)
  in
  let conn_a = Controller.attach_switch ctrl ~send:(collect framing_a received_a) in
  let conn_b = Controller.attach_switch ctrl ~send:(collect framing_b received_b) in
  let joins = ref [] in
  Controller.on_datapath_join ctrl ~name:"t" (fun _conn f ->
      joins := f.Ofp_message.datapath_id :: !joins);
  let seen_dpids = ref [] in
  Controller.on_packet_in ctrl ~name:"t" (fun ev ->
      seen_dpids := Controller.conn_dpid ev.Controller.conn :: !seen_dpids;
      Controller.Stop);
  let handshake conn dpid =
    Controller.input ctrl conn (Ofp_message.encode ~xid:1l Ofp_message.Hello);
    Controller.input ctrl conn
      (Ofp_message.encode ~xid:2l
         (Ofp_message.Features_reply { features with Ofp_message.datapath_id = dpid }))
  in
  handshake conn_a 0xaL;
  handshake conn_b 0xbL;
  Alcotest.(check int) "both joined" 2 (List.length !joins);
  Alcotest.(check int) "two live connections" 2 (List.length (Controller.connections ctrl));
  Controller.input ctrl conn_b (Ofp_message.encode ~xid:3l (packet_in_msg ()));
  Alcotest.(check bool) "event attributed to switch B" true (!seen_dpids = [ Some 0xbL ]);
  (* flow install goes only to the addressed switch *)
  received_a := [];
  received_b := [];
  Controller.install_flow conn_a Ofp_match.wildcard_all [ Ofp_action.output 1 ];
  Alcotest.(check int) "A got the flow-mod" 1 (List.length !received_a);
  Alcotest.(check int) "B got nothing" 0 (List.length !received_b)

let test_aggregate_stats_via_controller () =
  (* controller-side stats request against a real datapath *)
  let ctrl = Controller.create ~now:(fun () -> 0.) () in
  let dp_ref = ref None in
  let conn =
    Controller.attach_switch ctrl ~send:(fun bytes ->
        Option.iter (fun dp -> Hw_datapath.Datapath.input_from_controller dp bytes) !dp_ref)
  in
  let dp =
    Hw_datapath.Datapath.create ~dpid:5L
      ~ports:[ { Hw_datapath.Datapath.port_no = 1; name = "p1"; mac = mac_a } ]
      ~transmit:(fun ~port_no:_ _ -> ())
      ~to_controller:(fun bytes -> Controller.input ctrl conn bytes)
      ~now:(fun () -> 0.) ()
  in
  dp_ref := Some dp;
  Hw_datapath.Datapath.connect dp;
  Controller.install_flow conn
    { Ofp_match.wildcard_all with Ofp_match.in_port = Some 1 }
    [ Ofp_action.output Ofp_action.Port.controller ];
  (* push a packet through so counters move *)
  Hw_datapath.Datapath.receive_frame dp ~in_port:1
    (Packet.encode
       (Packet.udp_packet ~src_mac:mac_a ~dst_mac:mac_b ~src_ip:(Ip.of_octets 10 0 0 1)
          ~dst_ip:(Ip.of_octets 10 0 0 2) ~src_port:1 ~dst_port:2 "x"));
  let got = ref None in
  Controller.request_stats conn
    (Ofp_message.Aggregate_request
       {
         sr_match = Ofp_match.wildcard_all;
         table_id = 0xff;
         sr_out_port = Ofp_action.Port.none;
       })
    (fun reply -> got := Some reply);
  match !got with
  | Some (Ofp_message.Aggregate_reply a) ->
      Alcotest.(check int32) "one flow" 1l a.Ofp_message.ag_flow_count;
      Alcotest.(check int64) "one packet" 1L a.Ofp_message.ag_packet_count
  | _ -> Alcotest.fail "no aggregate reply"

let test_keepalive_liveness () =
  let now = ref 0. in
  let received = ref [] in
  let framing = Ofp_message.Framing.create () in
  let ctrl = Controller.create ~now:(fun () -> !now) () in
  let conn =
    Controller.attach_switch ctrl ~send:(fun bytes ->
        Ofp_message.Framing.input framing bytes;
        List.iter
          (function Ok m -> received := m :: !received | Error _ -> ())
          (Ofp_message.Framing.pop_all framing))
  in
  let left = ref false in
  Controller.on_datapath_leave ctrl ~name:"t" (fun _ -> left := true);
  Controller.input ctrl conn (Ofp_message.encode ~xid:1l Ofp_message.Hello);
  Controller.input ctrl conn (Ofp_message.encode ~xid:2l (Ofp_message.Features_reply features));
  received := [];
  (* quiet for 20 s: gets pinged, not detached *)
  now := 20.;
  Alcotest.(check int) "no detach yet" 0 (Controller.ping_stale ctrl ~idle_after:15. ~dead_after:120.);
  Alcotest.(check bool) "echo sent" true
    (List.exists (function _, Ofp_message.Echo_request _ -> true | _ -> false) !received);
  (* the switch answers: clock refreshes *)
  Controller.input ctrl conn (Ofp_message.encode ~xid:9l (Ofp_message.Echo_reply "hw-keepalive"));
  Alcotest.(check (float 0.01)) "last heard updated" 20. (Controller.conn_last_heard conn);
  (* dead silence past the threshold: detached *)
  now := 200.;
  Alcotest.(check int) "detached" 1 (Controller.ping_stale ctrl ~idle_after:15. ~dead_after:120.);
  Alcotest.(check bool) "leave fired" true !left;
  Alcotest.(check int) "gone" 0 (List.length (Controller.connections ctrl))

let test_install_flow_and_send_packet () =
  let fs = make_fake () in
  handshake fs;
  fs.received := [];
  Controller.install_flow ~idle_timeout:10 ~priority:7 fs.conn Ofp_match.wildcard_all
    [ Ofp_action.output 3 ];
  Controller.send_packet fs.conn ~in_port:2 "payload" [ Ofp_action.output 1 ];
  match List.rev_map snd !(fs.received) with
  | [ Ofp_message.Flow_mod fm; Ofp_message.Packet_out po ] ->
      Alcotest.(check int) "priority" 7 fm.Ofp_message.priority;
      Alcotest.(check int) "idle" 10 fm.Ofp_message.idle_timeout;
      Alcotest.(check string) "payload" "payload" po.Ofp_message.po_data;
      Alcotest.(check int) "in port" 2 po.Ofp_message.po_in_port
  | msgs -> Alcotest.failf "unexpected messages (%d)" (List.length msgs)

let () =
  Alcotest.run "hw_controller"
    [
      ( "controller",
        [
          Alcotest.test_case "handshake" `Quick test_handshake;
          Alcotest.test_case "echo" `Quick test_echo_handled;
          Alcotest.test_case "packet-in dispatch + parse" `Quick test_packet_in_dispatch_and_parse;
          Alcotest.test_case "handler exception isolated" `Quick test_handler_exception_isolated;
          Alcotest.test_case "stats xid correlation" `Quick test_stats_callback_correlation;
          Alcotest.test_case "barrier callback" `Quick test_barrier_callback;
          Alcotest.test_case "flow removed event" `Quick test_flow_removed_event;
          Alcotest.test_case "port status event" `Quick test_port_status_event;
          Alcotest.test_case "detach fires leave" `Quick test_detach_fires_leave;
          Alcotest.test_case "bad frame detaches" `Quick test_bad_frame_detaches;
          Alcotest.test_case "install flow / send packet" `Quick test_install_flow_and_send_packet;
          Alcotest.test_case "two switches" `Quick test_two_switches_one_controller;
          Alcotest.test_case "aggregate stats" `Quick test_aggregate_stats_via_controller;
          Alcotest.test_case "keepalive liveness" `Quick test_keepalive_liveness;
        ] );
    ]
