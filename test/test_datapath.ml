(* hw_datapath: flow table semantics and the switch pipeline *)

open Hw_packet
open Hw_openflow
open Hw_datapath

let mac_a = Mac.of_string_exn "aa:bb:cc:dd:ee:01"
let mac_b = Mac.of_string_exn "aa:bb:cc:dd:ee:02"
let ip_a = Ip.of_octets 10 0 0 5
let ip_b = Ip.of_octets 10 0 0 6

let fields ?(in_port = 1) ?(tp_dst = 80) () =
  {
    Ofp_match.f_in_port = in_port;
    f_dl_src = mac_a;
    f_dl_dst = mac_b;
    f_dl_vlan = 0xffff;
    f_dl_vlan_pcp = 0;
    f_dl_type = 0x0800;
    f_nw_tos = 0;
    f_nw_proto = 6;
    f_nw_src = ip_a;
    f_nw_dst = ip_b;
    f_tp_src = 40000;
    f_tp_dst = tp_dst;
  }

let entry ?(priority = 100) ?(idle = 0) ?(hard = 0) ?(now = 0.) m actions =
  Flow_entry.create ~idle_timeout:idle ~hard_timeout:hard ~now ~priority m actions

(* ------------------------------------------------------------------ *)
(* Flow table                                                          *)
(* ------------------------------------------------------------------ *)

let test_priority_order () =
  let table = Flow_table.create () in
  let low = entry ~priority:1 Ofp_match.wildcard_all [ Ofp_action.output 1 ] in
  let high =
    entry ~priority:200
      { Ofp_match.wildcard_all with Ofp_match.in_port = Some 1 }
      [ Ofp_action.output 2 ]
  in
  Flow_table.add table ~now:0. ~check_overlap:false low;
  Flow_table.add table ~now:0. ~check_overlap:false high;
  match Flow_table.lookup table (fields ()) with
  | Some e -> Alcotest.(check int) "high priority wins" 200 e.Flow_entry.priority
  | None -> Alcotest.fail "no match"

let test_exact_beats_wildcard () =
  let table = Flow_table.create () in
  let wild = entry ~priority:0xffff Ofp_match.wildcard_all [ Ofp_action.output 1 ] in
  let exact =
    entry ~priority:1 (Ofp_match.exact_of_fields (fields ())) [ Ofp_action.output 2 ]
  in
  Flow_table.add table ~now:0. ~check_overlap:false wild;
  Flow_table.add table ~now:0. ~check_overlap:false exact;
  match Flow_table.lookup table (fields ()) with
  | Some e ->
      (* OF 1.0: exact-match entries always take precedence *)
      Alcotest.(check int) "exact wins" 1 e.Flow_entry.priority
  | None -> Alcotest.fail "no match"

let test_add_replaces_same_match () =
  let table = Flow_table.create () in
  let m = { Ofp_match.wildcard_all with Ofp_match.in_port = Some 1 } in
  let e1 = entry ~priority:5 m [ Ofp_action.output 1 ] in
  Flow_table.add table ~now:0. ~check_overlap:false e1;
  Flow_entry.touch e1 ~now:1. ~bytes:100;
  let e2 = entry ~priority:5 m [ Ofp_action.output 9 ] in
  Flow_table.add table ~now:0. ~check_overlap:false e2;
  Alcotest.(check int) "one entry" 1 (Flow_table.length table);
  match Flow_table.lookup table (fields ()) with
  | Some e ->
      Alcotest.(check int64) "counters reset" 0L e.Flow_entry.packet_count;
      Alcotest.(check bool) "new actions" true
        (Ofp_action.equal (List.hd e.Flow_entry.actions) (Ofp_action.output 9))
  | None -> Alcotest.fail "no match"

let test_overlap_detection () =
  let table = Flow_table.create () in
  Flow_table.add table ~now:0. ~check_overlap:true
    (entry ~priority:7
       { Ofp_match.wildcard_all with Ofp_match.in_port = Some 1 }
       [ Ofp_action.output 1 ]);
  Alcotest.check_raises "overlap raises" Flow_table.Overlap (fun () ->
      Flow_table.add table ~now:0. ~check_overlap:true
        (entry ~priority:7
           { Ofp_match.wildcard_all with Ofp_match.nw_proto = Some 6 }
           [ Ofp_action.output 2 ]));
  (* different priority never overlaps *)
  Flow_table.add table ~now:0. ~check_overlap:true
    (entry ~priority:8
       { Ofp_match.wildcard_all with Ofp_match.nw_proto = Some 6 }
       [ Ofp_action.output 2 ])

let test_table_full () =
  let table = Flow_table.create ~max_entries:2 () in
  Flow_table.add table ~now:0. ~check_overlap:false
    (entry ~priority:1 { Ofp_match.wildcard_all with Ofp_match.in_port = Some 1 } []);
  Flow_table.add table ~now:0. ~check_overlap:false
    (entry ~priority:2 { Ofp_match.wildcard_all with Ofp_match.in_port = Some 2 } []);
  Alcotest.check_raises "full" Flow_table.Table_full (fun () ->
      Flow_table.add table ~now:0. ~check_overlap:false
        (entry ~priority:3 { Ofp_match.wildcard_all with Ofp_match.in_port = Some 3 } []))

let test_delete_loose_vs_strict () =
  let table = Flow_table.create () in
  let m1 = { Ofp_match.wildcard_all with Ofp_match.in_port = Some 1; nw_proto = Some 6 } in
  let m2 = { Ofp_match.wildcard_all with Ofp_match.in_port = Some 1 } in
  Flow_table.add table ~now:0. ~check_overlap:false (entry ~priority:5 m1 []);
  Flow_table.add table ~now:0. ~check_overlap:false (entry ~priority:6 m2 []);
  (* strict delete of m2 at priority 5 matches nothing *)
  let removed =
    Flow_table.delete table ~strict:true ~m:m2 ~priority:5 ~out_port:Ofp_action.Port.none
  in
  Alcotest.(check int) "strict miss" 0 (List.length removed);
  (* loose delete with m2 removes both (m2 subsumes m1) *)
  let removed =
    Flow_table.delete table ~strict:false ~m:m2 ~priority:0 ~out_port:Ofp_action.Port.none
  in
  Alcotest.(check int) "loose removes both" 2 (List.length removed);
  Alcotest.(check int) "empty" 0 (Flow_table.length table)

let test_delete_out_port_filter () =
  let table = Flow_table.create () in
  Flow_table.add table ~now:0. ~check_overlap:false
    (entry ~priority:1
       { Ofp_match.wildcard_all with Ofp_match.in_port = Some 1 }
       [ Ofp_action.output 4 ]);
  Flow_table.add table ~now:0. ~check_overlap:false
    (entry ~priority:2
       { Ofp_match.wildcard_all with Ofp_match.in_port = Some 2 }
       [ Ofp_action.output 5 ]);
  let removed =
    Flow_table.delete table ~strict:false ~m:Ofp_match.wildcard_all ~priority:0 ~out_port:4
  in
  Alcotest.(check int) "only port-4 flow" 1 (List.length removed);
  Alcotest.(check int) "one left" 1 (Flow_table.length table)

let test_modify_preserves_counters () =
  let table = Flow_table.create () in
  let m = { Ofp_match.wildcard_all with Ofp_match.in_port = Some 1 } in
  let e = entry ~priority:5 m [ Ofp_action.output 1 ] in
  Flow_table.add table ~now:0. ~check_overlap:false e;
  Flow_entry.touch e ~now:1. ~bytes:42;
  let updated = Flow_table.modify table ~strict:true ~m ~priority:5 [ Ofp_action.output 2 ] in
  Alcotest.(check int) "one updated" 1 updated;
  match Flow_table.lookup table (fields ()) with
  | Some e' ->
      Alcotest.(check int64) "counters kept" 1L e'.Flow_entry.packet_count;
      Alcotest.(check bool) "actions changed" true
        (Ofp_action.equal (List.hd e'.Flow_entry.actions) (Ofp_action.output 2))
  | None -> Alcotest.fail "entry lost"

let test_idle_and_hard_timeout () =
  let table = Flow_table.create () in
  let idle_e = entry ~priority:1 ~idle:10 (Ofp_match.exact_of_fields (fields ())) [] in
  let hard_e =
    entry ~priority:2 ~hard:30 { Ofp_match.wildcard_all with Ofp_match.in_port = Some 9 } []
  in
  Flow_table.add table ~now:0. ~check_overlap:false idle_e;
  Flow_table.add table ~now:0. ~check_overlap:false hard_e;
  Alcotest.(check int) "nothing at t=5" 0 (List.length (Flow_table.expire table ~now:5.));
  (* keep the idle flow alive *)
  Flow_entry.touch idle_e ~now:8. ~bytes:1;
  let at15 = Flow_table.expire table ~now:15. in
  Alcotest.(check int) "idle survives due to touch" 0 (List.length at15);
  let at19 = Flow_table.expire table ~now:19. in
  Alcotest.(check int) "idle expires at 18" 1 (List.length at19);
  (match at19 with
  | [ (_, reason) ] ->
      Alcotest.(check bool) "idle reason" true (reason = Ofp_message.Removed_idle_timeout)
  | _ -> Alcotest.fail "unexpected");
  let at31 = Flow_table.expire table ~now:31. in
  (match at31 with
  | [ (_, reason) ] ->
      Alcotest.(check bool) "hard reason" true (reason = Ofp_message.Removed_hard_timeout)
  | _ -> Alcotest.fail "hard not expired");
  Alcotest.(check int) "table empty" 0 (Flow_table.length table)

let test_lookup_counters () =
  let table = Flow_table.create () in
  Flow_table.add table ~now:0. ~check_overlap:false
    (entry ~priority:1 { Ofp_match.wildcard_all with Ofp_match.in_port = Some 1 } []);
  ignore (Flow_table.lookup table (fields ~in_port:1 ()));
  ignore (Flow_table.lookup table (fields ~in_port:2 ()));
  Alcotest.(check int64) "lookups" 2L (Flow_table.lookup_count table);
  Alcotest.(check int64) "matched" 1L (Flow_table.matched_count table)

(* ------------------------------------------------------------------ *)
(* Datapath pipeline (with a scripted controller side)                 *)
(* ------------------------------------------------------------------ *)

type harness = {
  dp : Datapath.t;
  transmitted : (int * string) list ref; (* port, frame; newest first *)
  to_controller : (int32 * Ofp_message.t) list ref;
  mutable now : float;
}

let make_harness ?(ports = [ 1; 2; 3 ]) () =
  let transmitted = ref [] in
  let to_controller = ref [] in
  let framing = Ofp_message.Framing.create () in
  let h = ref None in
  let dp =
    Datapath.create ~dpid:42L
      ~ports:
        (List.map
           (fun i ->
             { Datapath.port_no = i; name = Printf.sprintf "p%d" i; mac = Mac.local (0x50 + i) })
           ports)
      ~transmit:(fun ~port_no frame -> transmitted := (port_no, frame) :: !transmitted)
      ~to_controller:(fun bytes ->
        Ofp_message.Framing.input framing bytes;
        List.iter
          (function
            | Ok (xid, msg) -> to_controller := (xid, msg) :: !to_controller
            | Error e -> Alcotest.failf "bad controller frame: %s" e)
          (Ofp_message.Framing.pop_all framing))
      ~now:(fun () -> match !h with Some harness -> harness.now | None -> 0.) ()
  in
  let harness = { dp; transmitted; to_controller; now = 0. } in
  h := Some harness;
  harness

let send_to_dp h msg = Datapath.input_from_controller h.dp (Ofp_message.encode ~xid:99l msg)

let sample_frame () =
  Packet.encode
    (Packet.tcp_packet ~src_mac:mac_a ~dst_mac:mac_b ~src_ip:ip_a ~dst_ip:ip_b ~src_port:40000
       ~dst_port:80 "data")

let test_miss_raises_packet_in () =
  let h = make_harness () in
  Datapath.receive_frame h.dp ~in_port:1 (sample_frame ());
  match !(h.to_controller) with
  | [ (_, Ofp_message.Packet_in pi) ] ->
      Alcotest.(check int) "in_port" 1 pi.Ofp_message.in_port;
      Alcotest.(check bool) "buffered" true (pi.Ofp_message.buffer_id <> None);
      Alcotest.(check bool) "reason" true (pi.Ofp_message.reason = Ofp_message.No_match)
  | msgs -> Alcotest.failf "expected one packet-in, got %d messages" (List.length msgs)

let test_flow_mod_then_fast_path () =
  let h = make_harness () in
  let frame = sample_frame () in
  Datapath.receive_frame h.dp ~in_port:1 frame;
  let buffer_id =
    match !(h.to_controller) with
    | [ (_, Ofp_message.Packet_in pi) ] -> pi.Ofp_message.buffer_id
    | _ -> Alcotest.fail "no packet in"
  in
  (* install a flow referencing the buffer: the buffered frame must be
     forwarded immediately *)
  let pkt = Result.get_ok (Packet.decode frame) in
  let m = Ofp_match.exact_of_fields (Ofp_match.fields_of_packet ~in_port:1 pkt) in
  send_to_dp h
    (Ofp_message.Flow_mod
       {
         (Ofp_message.add_flow m [ Ofp_action.output 2 ]) with
         Ofp_message.fm_buffer_id = buffer_id;
       });
  (match !(h.transmitted) with
  | [ (2, out) ] -> Alcotest.(check string) "buffered frame forwarded" frame out
  | _ -> Alcotest.fail "buffered frame not released");
  h.transmitted := [];
  h.to_controller := [];
  (* subsequent identical frames take the fast path: no packet-in *)
  Datapath.receive_frame h.dp ~in_port:1 frame;
  Alcotest.(check int) "no controller traffic" 0 (List.length !(h.to_controller));
  (match !(h.transmitted) with
  | [ (2, _) ] -> ()
  | _ -> Alcotest.fail "fast path failed");
  (* counters *)
  match Flow_table.entries (Datapath.flow_table h.dp) with
  | [ e ] -> Alcotest.(check int64) "2 packets counted" 2L e.Flow_entry.packet_count
  | _ -> Alcotest.fail "expected one flow"

let test_packet_out_flood () =
  let h = make_harness () in
  send_to_dp h
    (Ofp_message.Packet_out
       (Ofp_message.packet_out ~in_port:1 ~data:(sample_frame ())
          [ Ofp_action.output Ofp_action.Port.flood ]));
  let ports = List.map fst !(h.transmitted) |> List.sort compare in
  Alcotest.(check (list int)) "flood skips in_port" [ 2; 3 ] ports

let test_header_rewrite_actions () =
  let h = make_harness () in
  send_to_dp h
    (Ofp_message.Packet_out
       (Ofp_message.packet_out ~data:(sample_frame ())
          [
            Ofp_action.Set_nw_dst (Ip.of_octets 9 9 9 9);
            Ofp_action.Set_tp_dst 8080;
            Ofp_action.output 2;
          ]));
  match !(h.transmitted) with
  | [ (2, out) ] -> (
      match Packet.decode out with
      | Ok { Packet.l3 = Packet.Ipv4 (ip, Packet.Tcp seg); _ } ->
          Alcotest.(check string) "nw_dst rewritten" "9.9.9.9" (Ip.to_string ip.Ipv4.dst);
          Alcotest.(check int) "tp_dst rewritten" 8080 seg.Tcp.dst_port
      | _ -> Alcotest.fail "rewrite broke the packet")
  | _ -> Alcotest.fail "no output"

let test_echo_and_features () =
  let h = make_harness () in
  send_to_dp h (Ofp_message.Echo_request "ping");
  (match !(h.to_controller) with
  | [ (99l, Ofp_message.Echo_reply "ping") ] -> ()
  | _ -> Alcotest.fail "echo broken");
  h.to_controller := [];
  send_to_dp h Ofp_message.Features_request;
  match !(h.to_controller) with
  | [ (99l, Ofp_message.Features_reply f) ] ->
      Alcotest.(check int64) "dpid" 42L f.Ofp_message.datapath_id;
      Alcotest.(check int) "ports" 3 (List.length f.Ofp_message.ports)
  | _ -> Alcotest.fail "features broken"

let test_stats_pipeline () =
  let h = make_harness () in
  send_to_dp h
    (Ofp_message.Flow_mod
       (Ofp_message.add_flow
          { Ofp_match.wildcard_all with Ofp_match.in_port = Some 1 }
          [ Ofp_action.output 2 ]));
  Datapath.receive_frame h.dp ~in_port:1 (sample_frame ());
  h.to_controller := [];
  send_to_dp h
    (Ofp_message.Stats_request
       (Ofp_message.Flow_stats_request
          {
            sr_match = Ofp_match.wildcard_all;
            table_id = 0xff;
            sr_out_port = Ofp_action.Port.none;
          }));
  (match !(h.to_controller) with
  | [ (_, Ofp_message.Stats_reply (Ofp_message.Flow_stats_reply [ fs ])) ] ->
      Alcotest.(check int64) "one packet" 1L fs.Ofp_message.fs_packet_count
  | _ -> Alcotest.fail "flow stats broken");
  h.to_controller := [];
  send_to_dp h (Ofp_message.Stats_request (Ofp_message.Port_stats_request Ofp_action.Port.none));
  (match !(h.to_controller) with
  | [ (_, Ofp_message.Stats_reply (Ofp_message.Port_stats_reply entries)) ] ->
      Alcotest.(check int) "three ports" 3 (List.length entries);
      let p1 = List.find (fun p -> p.Ofp_message.ps_port_no = 1) entries in
      Alcotest.(check int64) "rx on port 1" 1L p1.Ofp_message.rx_packets
  | _ -> Alcotest.fail "port stats broken");
  h.to_controller := [];
  send_to_dp h (Ofp_message.Stats_request Ofp_message.Table_stats_request);
  match !(h.to_controller) with
  | [ (_, Ofp_message.Stats_reply (Ofp_message.Table_stats_reply [ ts ])) ] ->
      Alcotest.(check int32) "one active flow" 1l ts.Ofp_message.ts_active_count
  | _ -> Alcotest.fail "table stats broken"

let test_flow_removed_on_timeout () =
  let h = make_harness () in
  send_to_dp h
    (Ofp_message.Flow_mod
       (Ofp_message.add_flow ~idle_timeout:5 ~send_flow_rem:true
          { Ofp_match.wildcard_all with Ofp_match.in_port = Some 1 }
          [ Ofp_action.output 2 ]));
  h.to_controller := [];
  h.now <- 10.;
  Datapath.tick h.dp;
  match !(h.to_controller) with
  | [ (_, Ofp_message.Flow_removed fr) ] ->
      Alcotest.(check bool) "idle reason" true
        (fr.Ofp_message.fr_reason = Ofp_message.Removed_idle_timeout)
  | _ -> Alcotest.fail "no flow removed message"

let test_barrier () =
  let h = make_harness () in
  send_to_dp h Ofp_message.Barrier_request;
  match !(h.to_controller) with
  | [ (99l, Ofp_message.Barrier_reply) ] -> ()
  | _ -> Alcotest.fail "barrier broken"

let test_port_status_on_hotplug () =
  let h = make_harness () in
  Datapath.add_port h.dp { Datapath.port_no = 9; name = "usb-eth"; mac = Mac.local 0x99 };
  (match !(h.to_controller) with
  | [ (_, Ofp_message.Port_status (Ofp_message.Port_add, p)) ] ->
      Alcotest.(check int) "port no" 9 p.Ofp_message.port_no
  | _ -> Alcotest.fail "no port add status");
  h.to_controller := [];
  Datapath.remove_port h.dp 9;
  match !(h.to_controller) with
  | [ (_, Ofp_message.Port_status (Ofp_message.Port_delete, _)) ] -> ()
  | _ -> Alcotest.fail "no port delete status"

let test_undecodable_frame_dropped () =
  let h = make_harness () in
  Datapath.receive_frame h.dp ~in_port:1 "garbage";
  Alcotest.(check int) "no packet-in for garbage" 0 (List.length !(h.to_controller));
  match Datapath.port_counters h.dp 1 with
  | Some c -> Alcotest.(check int64) "counted as drop" 1L c.Datapath.rx_dropped
  | None -> Alcotest.fail "no counters"

let test_port_mod_up_down () =
  let h = make_harness () in
  (* bring port 2 down: flood no longer reaches it, tx counted as drop *)
  send_to_dp h
    (Ofp_message.Port_mod
       {
         Ofp_message.pm_port_no = 2;
         pm_hw_addr = mac_a;
         pm_config = Ofp_message.port_down_bit;
         pm_mask = Ofp_message.port_down_bit;
         pm_advertise = 0l;
       });
  (match !(h.to_controller) with
  | [ (_, Ofp_message.Port_status (Ofp_message.Port_modify, p)) ] ->
      Alcotest.(check int) "port 2 modified" 2 p.Ofp_message.port_no
  | _ -> Alcotest.fail "no port status");
  h.transmitted := [];
  send_to_dp h
    (Ofp_message.Packet_out
       (Ofp_message.packet_out ~in_port:1 ~data:(sample_frame ())
          [ Ofp_action.output Ofp_action.Port.flood ]));
  Alcotest.(check (list int)) "flood skips downed port" [ 3 ]
    (List.map fst !(h.transmitted) |> List.sort compare);
  (* direct output to the downed port is counted as a drop *)
  h.transmitted := [];
  send_to_dp h
    (Ofp_message.Packet_out
       (Ofp_message.packet_out ~in_port:1 ~data:(sample_frame ()) [ Ofp_action.output 2 ]));
  Alcotest.(check int) "nothing transmitted" 0 (List.length !(h.transmitted));
  (match Datapath.port_counters h.dp 2 with
  | Some c -> Alcotest.(check bool) "drop counted" true (Int64.compare c.Datapath.tx_dropped 0L > 0)
  | None -> Alcotest.fail "no counters");
  (* and back up *)
  send_to_dp h
    (Ofp_message.Port_mod
       {
         Ofp_message.pm_port_no = 2;
         pm_hw_addr = mac_a;
         pm_config = 0l;
         pm_mask = Ofp_message.port_down_bit;
         pm_advertise = 0l;
       });
  h.transmitted := [];
  send_to_dp h
    (Ofp_message.Packet_out
       (Ofp_message.packet_out ~in_port:1 ~data:(sample_frame ())
          [ Ofp_action.output Ofp_action.Port.flood ]));
  Alcotest.(check (list int)) "back up" [ 2; 3 ]
    (List.map fst !(h.transmitted) |> List.sort compare);
  (* unknown port errors *)
  h.to_controller := [];
  send_to_dp h
    (Ofp_message.Port_mod
       {
         Ofp_message.pm_port_no = 99;
         pm_hw_addr = mac_a;
         pm_config = 0l;
         pm_mask = Ofp_message.port_down_bit;
         pm_advertise = 0l;
       });
  match !(h.to_controller) with
  | [ (_, Ofp_message.Error_msg e) ] ->
      Alcotest.(check bool) "port mod failed" true
        (e.Ofp_message.err_type = Ofp_message.Port_mod_failed)
  | _ -> Alcotest.fail "no error for unknown port"

let test_unknown_buffer_packet_out () =
  let h = make_harness () in
  send_to_dp h
    (Ofp_message.Packet_out
       {
         Ofp_message.po_buffer_id = Some 424242l;
         po_in_port = Ofp_action.Port.none;
         po_actions = [ Ofp_action.output 1 ];
         po_data = "";
       });
  match !(h.to_controller) with
  | [ (_, Ofp_message.Error_msg e) ] ->
      Alcotest.(check bool) "bad request" true (e.Ofp_message.err_type = Ofp_message.Bad_request)
  | _ -> Alcotest.fail "no error for unknown buffer"

(* ------------------------------------------------------------------ *)
(* Pinned edge semantics and PR-6 regressions                          *)
(* ------------------------------------------------------------------ *)

(* Regression: an ADD with OFPFF_CHECK_OVERLAP must not count the
   identical (priority, match) entry it is about to replace as an
   overlap. *)
let test_overlap_excludes_replaced_entry () =
  let table = Flow_table.create () in
  let m = { Ofp_match.wildcard_all with Ofp_match.nw_proto = Some 6 } in
  Flow_table.add table ~now:0. ~check_overlap:false
    (entry ~priority:7 m [ Ofp_action.output 1 ]);
  (* re-adding the same (priority, match) replaces, even when checking *)
  Flow_table.add table ~now:0. ~check_overlap:true
    (entry ~priority:7 m [ Ofp_action.output 2 ]);
  Alcotest.(check int) "replaced, not duplicated" 1 (Flow_table.length table);
  (match Flow_table.lookup table (fields ()) with
  | Some e -> Alcotest.(check bool) "new actions live" true (e.Flow_entry.actions = [ Ofp_action.output 2 ])
  | None -> Alcotest.fail "no match");
  (* a genuinely different overlapping entry still raises *)
  Alcotest.check_raises "distinct overlap still detected" Flow_table.Overlap (fun () ->
      Flow_table.add table ~now:0. ~check_overlap:true
        (entry ~priority:7
           { Ofp_match.wildcard_all with Ofp_match.tp_src = Some 40000 }
           [ Ofp_action.output 3 ]))

let test_exact_beats_wildcard_all_priorities () =
  let table = Flow_table.create () in
  List.iter
    (fun prio ->
      Flow_table.add table ~now:0. ~check_overlap:false
        (entry ~priority:prio
           { Ofp_match.wildcard_all with Ofp_match.in_port = Some 1 }
           [ Ofp_action.output 1 ]))
    [ 0; 100; 0xffff ];
  Flow_table.add table ~now:0. ~check_overlap:false
    (entry ~priority:0 (Ofp_match.exact_of_fields (fields ())) [ Ofp_action.output 2 ]);
  match Flow_table.lookup table (fields ()) with
  | Some e ->
      Alcotest.(check bool) "priority-0 exact beats priority-0xffff wildcard" true
        (e.Flow_entry.actions = [ Ofp_action.output 2 ])
  | None -> Alcotest.fail "no match"

let test_delete_out_port_exact_entry () =
  let table = Flow_table.create () in
  let e = entry ~priority:3 (Ofp_match.exact_of_fields (fields ())) [ Ofp_action.output 2 ] in
  Flow_table.add table ~now:0. ~check_overlap:false e;
  (* non-strict delete of everything-to-port-3 must not touch it *)
  let removed =
    Flow_table.delete table ~strict:false ~m:Ofp_match.wildcard_all ~priority:0 ~out_port:3
  in
  Alcotest.(check int) "wrong out_port leaves exact entry" 0 (List.length removed);
  Alcotest.(check int) "still installed" 1 (Flow_table.length table);
  let removed =
    Flow_table.delete table ~strict:false ~m:Ofp_match.wildcard_all ~priority:0 ~out_port:2
  in
  Alcotest.(check int) "matching out_port removes it" 1 (List.length removed);
  Alcotest.(check int) "table empty" 0 (Flow_table.length table)

let test_hard_reason_when_both_expired () =
  let table = Flow_table.create () in
  Flow_table.add table ~now:0. ~check_overlap:false
    (entry ~priority:1 ~idle:5 ~hard:10 (Ofp_match.exact_of_fields (fields ())) []);
  (* at t=20 both timeouts have fired; hard takes precedence *)
  match Flow_table.expire table ~now:20. with
  | [ (_, reason) ] ->
      Alcotest.(check bool) "hard wins" true (reason = Ofp_message.Removed_hard_timeout)
  | l -> Alcotest.failf "expected one expiry, got %d" (List.length l)

let prop_flow_table_lookup_consistent =
  QCheck.Test.make ~name:"lookup result actually matches the fields" ~count:200
    QCheck.(pair (int_range 1 4) (int_bound 0xffff))
    (fun (in_port, tp_dst) ->
      let table = Flow_table.create () in
      Flow_table.add table ~now:0. ~check_overlap:false
        (entry ~priority:5 { Ofp_match.wildcard_all with Ofp_match.in_port = Some 1 } []);
      Flow_table.add table ~now:0. ~check_overlap:false
        (entry ~priority:9 { Ofp_match.wildcard_all with Ofp_match.tp_dst = Some 80 } []);
      let f = fields ~in_port ~tp_dst () in
      match Flow_table.lookup table f with
      | Some e -> Ofp_match.matches e.Flow_entry.entry_match f
      | None -> in_port <> 1 && tp_dst <> 80)

(* ------------------------------------------------------------------ *)
(* PR-6: datapath-level regressions (buffers, error paths, batching)   *)
(* ------------------------------------------------------------------ *)

(* OF 1.0: MODIFY that matches nothing behaves like ADD. *)
let test_modify_no_match_acts_as_add () =
  let h = make_harness () in
  let m = { Ofp_match.wildcard_all with Ofp_match.in_port = Some 1 } in
  send_to_dp h
    (Ofp_message.Flow_mod
       {
         (Ofp_message.add_flow m [ Ofp_action.output 2 ]) with
         Ofp_message.command = Ofp_message.Modify;
       });
  Alcotest.(check int) "entry added" 1 (Flow_table.length (Datapath.flow_table h.dp));
  Datapath.receive_frame h.dp ~in_port:1 (sample_frame ());
  match !(h.transmitted) with
  | [ (2, _) ] -> ()
  | _ -> Alcotest.fail "added entry not forwarding"

let test_buffer_id_wraparound () =
  Alcotest.(check int32) "24-bit wrap back to 1" 1l (Datapath.next_buffer_id_after 0xffffffl);
  (* regression for the five-f typo: 2^20-1 must NOT wrap *)
  Alcotest.(check int32) "no wrap at 2^20-1" 0x100000l (Datapath.next_buffer_id_after 0xfffffl);
  Alcotest.(check int32) "plain increment" 2l (Datapath.next_buffer_id_after 1l)

let test_buffer_fifo_eviction () =
  let h = make_harness () in
  let frame = sample_frame () in
  (* 1100 misses: ids 1..1100 issued; at the 1025th the oldest live
     buffer is evicted, never the whole store *)
  for _ = 1 to 1100 do
    Datapath.receive_frame h.dp ~in_port:1 frame
  done;
  Alcotest.(check int) "capped at 1024" 1024 (Datapath.buffered_count h.dp);
  (* the oldest id was evicted: referencing it errors *)
  h.to_controller := [];
  send_to_dp h
    (Ofp_message.Packet_out
       {
         Ofp_message.po_buffer_id = Some 1l;
         po_in_port = Ofp_action.Port.none;
         po_actions = [ Ofp_action.output 2 ];
         po_data = "";
       });
  (match !(h.to_controller) with
  | [ (_, Ofp_message.Error_msg e) ] ->
      Alcotest.(check bool) "evicted id unknown" true
        (e.Ofp_message.err_type = Ofp_message.Bad_request)
  | _ -> Alcotest.fail "expected buffer-unknown error for evicted id");
  (* the newest id is still live and releases its frame *)
  h.transmitted := [];
  send_to_dp h
    (Ofp_message.Packet_out
       {
         Ofp_message.po_buffer_id = Some 1100l;
         po_in_port = Ofp_action.Port.none;
         po_actions = [ Ofp_action.output 2 ];
         po_data = "";
       });
  (match !(h.transmitted) with
  | [ (2, out) ] -> Alcotest.(check string) "newest frame intact" frame out
  | _ -> Alcotest.fail "newest buffer lost");
  Alcotest.(check int) "consumed id freed" 1023 (Datapath.buffered_count h.dp)

(* Regression: a failed ADD (overlap or full table) must release the
   buffer named by fm_buffer_id instead of stranding the frame. *)
let test_failed_flow_mod_releases_buffer () =
  let h = make_harness () in
  (* install a wildcard entry that does NOT match the sample frame *)
  send_to_dp h
    (Ofp_message.Flow_mod
       (Ofp_message.add_flow ~priority:7
          { Ofp_match.wildcard_all with Ofp_match.tp_dst = Some 9999 }
          [ Ofp_action.output 2 ]));
  Datapath.receive_frame h.dp ~in_port:1 (sample_frame ());
  let bid =
    match !(h.to_controller) with
    | (_, Ofp_message.Packet_in pi) :: _ -> pi.Ofp_message.buffer_id
    | _ -> Alcotest.fail "no packet-in"
  in
  Alcotest.(check bool) "miss was buffered" true (bid <> None);
  (* overlapping same-priority ADD with CHECK_OVERLAP and the buffer id *)
  h.to_controller := [];
  send_to_dp h
    (Ofp_message.Flow_mod
       {
         (Ofp_message.add_flow ~priority:7
            { Ofp_match.wildcard_all with Ofp_match.tp_src = Some 40000 }
            [ Ofp_action.output 3 ])
         with
         Ofp_message.check_overlap = true;
         fm_buffer_id = bid;
       });
  (match !(h.to_controller) with
  | [ (_, Ofp_message.Error_msg e) ] ->
      Alcotest.(check bool) "overlap error" true
        (e.Ofp_message.err_type = Ofp_message.Flow_mod_failed && e.Ofp_message.err_code = 1)
  | _ -> Alcotest.fail "expected overlap error");
  Alcotest.(check int) "buffer released on error path" 0 (Datapath.buffered_count h.dp);
  (* and the id is really gone: packet-out on it errors *)
  h.to_controller := [];
  send_to_dp h
    (Ofp_message.Packet_out
       {
         Ofp_message.po_buffer_id = bid;
         po_in_port = Ofp_action.Port.none;
         po_actions = [ Ofp_action.output 2 ];
         po_data = "";
       });
  match !(h.to_controller) with
  | [ (_, Ofp_message.Error_msg e) ] ->
      Alcotest.(check bool) "buffer unknown" true
        (e.Ofp_message.err_type = Ofp_message.Bad_request)
  | _ -> Alcotest.fail "expected buffer-unknown error"

let test_receive_frames_batch () =
  let h = make_harness () in
  let frame = sample_frame () in
  let pkt = Result.get_ok (Packet.decode frame) in
  let m = Ofp_match.exact_of_fields (Ofp_match.fields_of_packet ~in_port:1 pkt) in
  send_to_dp h (Ofp_message.Flow_mod (Ofp_message.add_flow m [ Ofp_action.output 2 ]));
  Datapath.receive_frames h.dp [ (1, frame); (1, frame); (1, frame) ];
  Alcotest.(check int) "all three forwarded" 3 (List.length !(h.transmitted));
  Alcotest.(check int) "no controller traffic" 0 (List.length !(h.to_controller));
  match Flow_table.entries (Datapath.flow_table h.dp) with
  | [ e ] -> Alcotest.(check int64) "entry counters batched" 3L e.Flow_entry.packet_count
  | _ -> Alcotest.fail "expected one flow"

(* ------------------------------------------------------------------ *)
(* PR-6: classifier vs naive linear reference (qcheck)                 *)
(* ------------------------------------------------------------------ *)

(* Small value domains force overlapping entries, shared tuples and
   priority ties; the reference implements the specified semantics
   directly: exact entries beat wildcards, then highest priority, then
   earliest install. Results are compared by physical identity. *)
module Ref_model = struct
  let ip_pool = [| Ip.of_octets 10 0 0 1; Ip.of_octets 10 0 0 2; Ip.of_octets 10 1 0 1 |]
  let mac_pool = [| mac_a; mac_b |]

  let gen_match =
    let open QCheck.Gen in
    let opt g = oneof [ return None; map Option.some g ] in
    let prefix = opt (pair (oneofa ip_pool) (oneofl [ 0; 8; 24; 32 ])) in
    let* in_port = opt (oneofl [ 1; 2 ]) in
    let* dl_src = opt (oneofa mac_pool) in
    let* dl_dst = opt (oneofa mac_pool) in
    let* dl_type = opt (oneofl [ 0x0800; 0x0806 ]) in
    let* nw_proto = opt (oneofl [ 6; 17 ]) in
    let* nw_src = prefix in
    let* nw_dst = prefix in
    let* tp_src = opt (oneofl [ 80; 443 ]) in
    let* tp_dst = opt (oneofl [ 80; 443 ]) in
    return
      {
        Ofp_match.wildcard_all with
        Ofp_match.in_port;
        dl_src;
        dl_dst;
        dl_type;
        nw_proto;
        nw_src;
        nw_dst;
        tp_src;
        tp_dst;
      }

  let gen_fields =
    let open QCheck.Gen in
    let* f_in_port = oneofl [ 1; 2 ] in
    let* f_dl_src = oneofa mac_pool in
    let* f_dl_dst = oneofa mac_pool in
    let* f_dl_type = oneofl [ 0x0800; 0x0806 ] in
    let* f_nw_proto = oneofl [ 6; 17 ] in
    let* f_nw_src = oneofa ip_pool in
    let* f_nw_dst = oneofa ip_pool in
    let* f_tp_src = oneofl [ 80; 443 ] in
    let* f_tp_dst = oneofl [ 80; 443 ] in
    return
      {
        Ofp_match.f_in_port;
        f_dl_src;
        f_dl_dst;
        f_dl_vlan = 0xffff;
        f_dl_vlan_pcp = 0;
        f_dl_type;
        f_nw_tos = 0;
        f_nw_proto;
        f_nw_src;
        f_nw_dst;
        f_tp_src;
        f_tp_dst;
      }

  let gen_spec =
    let open QCheck.Gen in
    pair (oneofl [ 1; 5; 9 ]) gen_match

  (* [entries] oldest-first; same precedence rules the classifier claims *)
  let lookup entries f =
    let matching =
      List.filter (fun e -> Ofp_match.matches e.Flow_entry.entry_match f) entries
    in
    let exacts =
      List.filter (fun e -> Ofp_match.mask_is_exact e.Flow_entry.entry_mask) matching
    in
    let pool = if exacts <> [] then exacts else matching in
    List.fold_left
      (fun acc e ->
        match acc with
        | Some best when best.Flow_entry.priority >= e.Flow_entry.priority -> acc
        | _ -> Some e)
      None pool

  let add entries (e : Flow_entry.t) =
    List.filter
      (fun (r : Flow_entry.t) ->
        not
          (r.Flow_entry.priority = e.Flow_entry.priority
          && Ofp_match.equal r.Flow_entry.entry_match e.Flow_entry.entry_match))
      entries
    @ [ e ]

  let agree table entries pkts =
    List.for_all
      (fun f ->
        match (lookup entries f, Flow_table.lookup table f) with
        | None, None -> true
        | Some a, Some b -> a == b
        | _ -> false)
      pkts
end

let prop_classifier_agrees_with_reference =
  QCheck.Test.make ~name:"tuple-space classifier = linear reference (10k)" ~count:10_000
    (QCheck.make
       QCheck.Gen.(pair (list_size (int_range 2 14) Ref_model.gen_spec)
                     (list_size (int_range 1 6) Ref_model.gen_fields)))
    (fun (specs, pkts) ->
      let table = Flow_table.create () in
      let reference =
        List.fold_left
          (fun acc (prio, m) ->
            let e = entry ~priority:prio m [] in
            Flow_table.add table ~now:0. ~check_overlap:false e;
            Ref_model.add acc e)
          [] specs
      in
      Ref_model.agree table reference pkts)

let prop_classifier_agrees_after_deletes =
  QCheck.Test.make ~name:"classifier = reference after strict deletes" ~count:1_000
    (QCheck.make
       QCheck.Gen.(pair
                     (list_size (int_range 2 12) (pair Ref_model.gen_spec bool))
                     (list_size (int_range 1 6) Ref_model.gen_fields)))
    (fun (specs, pkts) ->
      let table = Flow_table.create () in
      let reference =
        List.fold_left
          (fun acc ((prio, m), _) ->
            let e = entry ~priority:prio m [] in
            Flow_table.add table ~now:0. ~check_overlap:false e;
            Ref_model.add acc e)
          [] specs
      in
      (* strict-delete the flagged specs, exercising per-tuple removal and
         max-priority recomputation *)
      let reference =
        List.fold_left
          (fun acc ((prio, m), doomed) ->
            if not doomed then acc
            else begin
              ignore
                (Flow_table.delete table ~strict:true ~m ~priority:prio
                   ~out_port:Ofp_action.Port.none);
              List.filter
                (fun (r : Flow_entry.t) ->
                  not (r.Flow_entry.priority = prio && Ofp_match.equal r.Flow_entry.entry_match m))
                acc
            end)
          reference specs
      in
      Alcotest.(check int) "sizes agree" (List.length reference) (Flow_table.length table);
      Ref_model.agree table reference pkts)

let () =
  Alcotest.run "hw_datapath"
    [
      ( "flow_table",
        [
          Alcotest.test_case "priority order" `Quick test_priority_order;
          Alcotest.test_case "exact beats wildcard" `Quick test_exact_beats_wildcard;
          Alcotest.test_case "add replaces" `Quick test_add_replaces_same_match;
          Alcotest.test_case "overlap detection" `Quick test_overlap_detection;
          Alcotest.test_case "table full" `Quick test_table_full;
          Alcotest.test_case "delete loose/strict" `Quick test_delete_loose_vs_strict;
          Alcotest.test_case "delete out_port filter" `Quick test_delete_out_port_filter;
          Alcotest.test_case "modify preserves counters" `Quick test_modify_preserves_counters;
          Alcotest.test_case "timeouts" `Quick test_idle_and_hard_timeout;
          Alcotest.test_case "lookup counters" `Quick test_lookup_counters;
          Alcotest.test_case "overlap excludes replaced entry" `Quick
            test_overlap_excludes_replaced_entry;
          Alcotest.test_case "exact beats wildcard at any priority" `Quick
            test_exact_beats_wildcard_all_priorities;
          Alcotest.test_case "delete out_port on exact entry" `Quick
            test_delete_out_port_exact_entry;
          Alcotest.test_case "hard reason when both expired" `Quick
            test_hard_reason_when_both_expired;
          QCheck_alcotest.to_alcotest prop_flow_table_lookup_consistent;
        ] );
      ( "classifier",
        [
          QCheck_alcotest.to_alcotest prop_classifier_agrees_with_reference;
          QCheck_alcotest.to_alcotest prop_classifier_agrees_after_deletes;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "miss raises packet-in" `Quick test_miss_raises_packet_in;
          Alcotest.test_case "flow-mod then fast path" `Quick test_flow_mod_then_fast_path;
          Alcotest.test_case "packet-out flood" `Quick test_packet_out_flood;
          Alcotest.test_case "header rewrite" `Quick test_header_rewrite_actions;
          Alcotest.test_case "echo + features" `Quick test_echo_and_features;
          Alcotest.test_case "stats" `Quick test_stats_pipeline;
          Alcotest.test_case "flow removed on timeout" `Quick test_flow_removed_on_timeout;
          Alcotest.test_case "barrier" `Quick test_barrier;
          Alcotest.test_case "port hotplug" `Quick test_port_status_on_hotplug;
          Alcotest.test_case "garbage frames dropped" `Quick test_undecodable_frame_dropped;
          Alcotest.test_case "unknown buffer errors" `Quick test_unknown_buffer_packet_out;
          Alcotest.test_case "port mod up/down" `Quick test_port_mod_up_down;
          Alcotest.test_case "modify with no match acts as add" `Quick
            test_modify_no_match_acts_as_add;
          Alcotest.test_case "buffer id 24-bit wraparound" `Quick test_buffer_id_wraparound;
          Alcotest.test_case "buffer FIFO eviction" `Quick test_buffer_fifo_eviction;
          Alcotest.test_case "failed flow-mod releases buffer" `Quick
            test_failed_flow_mod_releases_buffer;
          Alcotest.test_case "batched receive_frames" `Quick test_receive_frames_batch;
        ] );
    ]
