(* Failure injection: the router must degrade gracefully under malformed
   input, resource exhaustion, lossy links and misbehaving clients. *)

open Hw_packet
module Home = Hw_router.Home
module Router = Hw_router.Router
module Device = Hw_sim.Device
module Dhcp_server = Hw_dhcp.Dhcp_server

let mac i = Mac.local (0x80 + i)

(* ------------------------------------------------------------------ *)
(* DHCP pool exhaustion                                                *)
(* ------------------------------------------------------------------ *)

let test_lease_pool_exhaustion () =
  (* a /29-sized pool (6 addresses) with 10 clients: 6 bind, 4 are NAKed
     but keep retrying; nothing crashes and the pool never over-allocates *)
  let config =
    {
      Dhcp_server.default_config with
      Dhcp_server.pool_start = Ip.of_octets 10 0 0 100;
      pool_end = Ip.of_octets 10 0 0 105;
      default_permit = true;
    }
  in
  let home = Home.create ~dhcp_config:config () in
  let devices =
    List.init 10 (fun i ->
        Home.add_device home (Device.wired ~name:(Printf.sprintf "d%d" i) ~mac:(mac i) []))
  in
  Home.run_for home 120.;
  let bound = List.filter (fun d -> Device.dhcp_state d = Device.Bound) devices in
  Alcotest.(check int) "exactly pool-size devices bound" 6 (List.length bound);
  let lease_db = Dhcp_server.lease_db (Router.dhcp (Home.router home)) in
  Alcotest.(check (float 0.001)) "pool saturated" 1.0 (Hw_dhcp.Lease_db.utilisation lease_db);
  let ips = List.filter_map Device.ip devices in
  Alcotest.(check int) "no duplicate addresses" (List.length bound)
    (List.length (List.sort_uniq Ip.compare ips))

let test_pool_recycles_after_release () =
  let config =
    {
      Dhcp_server.default_config with
      Dhcp_server.pool_start = Ip.of_octets 10 0 0 100;
      pool_end = Ip.of_octets 10 0 0 100 (* one address! *);
      default_permit = true;
    }
  in
  let home = Home.create ~dhcp_config:config () in
  let d1 = Home.add_device home (Device.wired ~name:"first" ~mac:(mac 1) []) in
  Home.run_for home 10.;
  Alcotest.(check bool) "first bound" true (Device.dhcp_state d1 = Device.Bound);
  let d2 = Home.add_device home (Device.wired ~name:"second" ~mac:(mac 2) []) in
  Home.run_for home 10.;
  Alcotest.(check bool) "second starved" false (Device.dhcp_state d2 = Device.Bound);
  (* first leaves; second's retries must eventually win the address *)
  Device.stop d1;
  Home.run_for home 120.;
  Alcotest.(check bool) "second bound after release" true (Device.dhcp_state d2 = Device.Bound)

(* ------------------------------------------------------------------ *)
(* Malformed control-channel input                                     *)
(* ------------------------------------------------------------------ *)

let test_datapath_survives_garbage_from_controller () =
  let sent = ref 0 in
  let dp =
    Hw_datapath.Datapath.create ~dpid:1L
      ~ports:[ { Hw_datapath.Datapath.port_no = 1; name = "p1"; mac = mac 1 } ]
      ~transmit:(fun ~port_no:_ _ -> ())
      ~to_controller:(fun _ -> incr sent)
      ~now:(fun () -> 0.) ()
  in
  Hw_datapath.Datapath.input_from_controller dp "\xff\xff\xff\xff total garbage";
  (* the stream is dead but the datapath still switches *)
  let frame =
    Packet.encode
      (Packet.udp_packet ~src_mac:(mac 1) ~dst_mac:(mac 2) ~src_ip:(Ip.of_octets 10 0 0 1)
         ~dst_ip:(Ip.of_octets 10 0 0 2) ~src_port:1 ~dst_port:2 "x")
  in
  Hw_datapath.Datapath.receive_frame dp ~in_port:1 frame;
  Alcotest.(check bool) "still emits packet-ins" true (!sent >= 1)

let test_router_survives_rpc_garbage () =
  let home = Home.standard_home () in
  Home.permit_all home;
  let router = Home.router home in
  (* datagram fuzz: none of these may raise *)
  List.iter
    (fun junk -> Router.rpc_datagram router ~from:"fuzzer" junk)
    [ ""; "\x00"; String.make 10_000 '\xff'; "Hw\x01\x01"; "GET / HTTP/1.1\r\n\r\n" ];
  (* HTTP fuzz through the raw entry point *)
  List.iter
    (fun junk -> ignore (Router.http_raw router junk))
    [ ""; "POST"; "GET /api/devices HTTP/1.1\r\ncontent-length: zork\r\n\r\n" ];
  Home.run_for home 5.;
  Alcotest.(check bool) "router still alive" true (Router.flows_installed router >= 0)

let test_malformed_frames_on_the_wire () =
  let home = Home.standard_home () in
  Home.permit_all home;
  let router = Home.router home in
  Home.run_for home 10.;
  let before = Router.packet_ins router in
  (* inject garbage frames on every port *)
  List.iter
    (fun port ->
      Router.receive_frame router ~in_port:port "short";
      Router.receive_frame router ~in_port:port (String.make 64 '\x00');
      Router.receive_frame router ~in_port:port (String.make 2000 '\xaa'))
    [ Router.wireless_port; Router.wired_port 0; Router.upstream_port ];
  Home.run_for home 5.;
  Alcotest.(check bool) "no packet-in storm from garbage" true
    (Router.packet_ins router - before < 40);
  Alcotest.(check bool) "network still works" true (Router.flows_installed router >= 0)

(* ------------------------------------------------------------------ *)
(* Lossy wireless                                                      *)
(* ------------------------------------------------------------------ *)

let test_distant_station_suffers_but_the_router_survives () =
  let home = Home.create () in
  let router = Home.router home in
  Dhcp_server.permit (Router.dhcp router) (mac 1);
  let far =
    Home.add_device home
      (Device.wireless ~distance_m:60. ~name:"garden-cam" ~mac:(mac 1)
         [ Hw_sim.App_profile.iot_telemetry ])
  in
  (* the artifact's Mode 3 red flashes must fire for the retry storm *)
  let artifact = Hw_ui.Artifact.create () in
  let driver =
    Hw_ui.Artifact_driver.attach ~period:5. ~retry_threshold:0.1 ~db:(Router.db router)
      ~artifact ()
  in
  Home.run_for home 180.;
  let st = Device.stats far in
  Alcotest.(check bool) "link-layer retries observed" true (st.Device.retries > 0);
  Alcotest.(check bool) "artifact raised retry alarms" true
    (Hw_ui.Artifact_driver.retry_alarms driver > 0);
  (* the DHCP retry loop must eventually get it online despite losses *)
  Alcotest.(check bool) "eventually bound" true (Device.dhcp_state far = Device.Bound);
  (* and the retries are visible to the measurement plane *)
  match
    Hw_hwdb.Database.query (Router.db router)
      "SELECT MAX(retries) AS r FROM Links"
  with
  | Ok { Hw_hwdb.Query.rows = [ [ v ] ]; _ } ->
      Alcotest.(check bool) "Links shows retries" true
        (Option.value (Hw_hwdb.Value.as_float v) ~default:0. > 0.)
  | _ -> Alcotest.fail "no Links data"

(* ------------------------------------------------------------------ *)
(* hwdb overload                                                       *)
(* ------------------------------------------------------------------ *)

let test_hwdb_bounded_under_sustained_load () =
  let now = ref 0. in
  let db = Hw_hwdb.Database.create ~default_capacity:512 ~now:(fun () -> !now) () in
  for i = 1 to 50_000 do
    now := float_of_int i *. 0.001;
    Hw_hwdb.Database.record_flow db ~proto:6
      ~src_ip:(Printf.sprintf "10.0.0.%d" (i mod 200))
      ~dst_ip:"1.2.3.4" ~src_port:i ~dst_port:80 ~packets:1 ~bytes:i
  done;
  let table = Option.get (Hw_hwdb.Database.table db "Flows") in
  Alcotest.(check int) "capacity bound" 512 (Hw_hwdb.Table.length table);
  Alcotest.(check int) "everything counted" 50_000 (Hw_hwdb.Table.total_inserted table);
  (* only the newest rows survive *)
  match Hw_hwdb.Database.query db "SELECT MIN(src_port), MAX(src_port) FROM Flows" with
  | Ok { Hw_hwdb.Query.rows = [ [ lo; hi ] ]; _ } ->
      Alcotest.(check bool) "fifo eviction" true
        (Hw_hwdb.Value.equal hi (Hw_hwdb.Value.Int 50_000)
        && Hw_hwdb.Value.equal lo (Hw_hwdb.Value.Int (50_000 - 512 + 1)))
  | _ -> Alcotest.fail "query failed"

let test_subscription_survives_failing_query () =
  (* a subscription on a table that gets dropped... tables cannot be
     dropped; instead make the query fail via a type error at runtime:
     comparing str and int in WHERE *)
  let now = ref 0. in
  let db = Hw_hwdb.Database.create ~now:(fun () -> !now) () in
  let bad = Result.get_ok (Hw_hwdb.Parser.parse_select "SELECT * FROM Flows WHERE src_ip > 5") in
  let good = Result.get_ok (Hw_hwdb.Parser.parse_select "SELECT COUNT(*) FROM Flows") in
  let deliveries = ref 0 in
  ignore (Hw_hwdb.Database.subscribe db ~query:bad ~period:1. ~callback:(fun _ -> ()));
  ignore
    (Hw_hwdb.Database.subscribe db ~query:good ~period:1. ~callback:(fun _ -> incr deliveries));
  Hw_hwdb.Database.record_flow db ~proto:6 ~src_ip:"a" ~dst_ip:"b" ~src_port:1 ~dst_port:2
    ~packets:1 ~bytes:1;
  now := 1.;
  Hw_hwdb.Database.tick db;
  now := 2.;
  Hw_hwdb.Database.tick db;
  (* the failing subscription is logged and skipped; the good one flows *)
  Alcotest.(check int) "good subscription unaffected" 2 !deliveries

(* ------------------------------------------------------------------ *)
(* USB keys via the router                                             *)
(* ------------------------------------------------------------------ *)

let test_broken_usb_key_lifts_nothing () =
  let home = Home.create ~start:(Hw_time.at ~day:Hw_time.Mon ~hour:17 ~min:0) () in
  let router = Home.router home in
  Hw_policy.Policy.define_group (Router.policy router) "kids" [ mac 1 ];
  Hw_policy.Policy.add_rule (Router.policy router)
    {
      Hw_policy.Policy.rule_id = "r";
      group = "kids";
      services = [];
      schedule = Hw_policy.Schedule.always;
      requires_token = Some "good-token";
    };
  let kid = Home.add_device home (Device.wired ~name:"kid" ~mac:(mac 1) []) in
  Home.run_for home 20.;
  Alcotest.(check bool) "offline" true (Device.dhcp_state kid <> Device.Bound);
  (* a key with a corrupt rules directory must be rejected wholesale *)
  let broken =
    Hw_policy.Usb_key.Dir
      [
        ( "homework",
          Hw_policy.Usb_key.Dir
            [
              ("token", Hw_policy.Usb_key.File "good-token");
              ( "rules",
                Hw_policy.Usb_key.Dir [ ("oops", Hw_policy.Usb_key.File "no colons here") ] );
            ] );
      ]
  in
  (match Router.insert_usb router ~device:"sdb1" broken with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "broken key accepted");
  Home.run_for home 60.;
  Alcotest.(check bool) "still offline (fail closed)" true (Device.dhcp_state kid <> Device.Bound);
  (* a key missing the homework directory entirely *)
  (match Router.insert_usb router ~device:"sdb2" (Hw_policy.Usb_key.Dir [ ("photos", Hw_policy.Usb_key.Dir []) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "random storage device treated as a policy key")

(* ------------------------------------------------------------------ *)
(* Misbehaving DHCP client                                             *)
(* ------------------------------------------------------------------ *)

let test_client_requesting_foreign_address () =
  let now = ref 0. in
  let server =
    Dhcp_server.create
      ~config:{ Dhcp_server.default_config with Dhcp_server.default_permit = true }
      ~now:(fun () -> !now)
      ()
  in
  (* give mac 1 an address *)
  let discover m =
    Packet.dhcp_packet ~src_mac:m ~dst_mac:Mac.broadcast ~src_ip:Ip.any ~dst_ip:Ip.broadcast
      (Dhcp_wire.make_request ~xid:1l ~chaddr:m Dhcp_wire.Discover)
  in
  let request m ip =
    Packet.dhcp_packet ~src_mac:m ~dst_mac:Mac.broadcast ~src_ip:Ip.any ~dst_ip:Ip.broadcast
      (Dhcp_wire.make_request
         ~options:[ Dhcp_wire.Requested_ip ip ]
         ~xid:2l ~chaddr:m Dhcp_wire.Request)
  in
  let ip1 =
    match Dhcp_server.handle_packet server (discover (mac 1)) with
    | [ offer ] -> (
        match offer.Packet.l3 with
        | Packet.Ipv4 (_, Packet.Udp u) ->
            (Result.get_ok (Dhcp_wire.decode u.Udp.payload)).Dhcp_wire.yiaddr
        | _ -> Alcotest.fail "bad offer")
    | _ -> Alcotest.fail "no offer"
  in
  ignore (Dhcp_server.handle_packet server (request (mac 1) ip1));
  (* a hijacker requests mac 1's address *)
  (match Dhcp_server.handle_packet server (request (mac 2) ip1) with
  | [ reply ] -> (
      match reply.Packet.l3 with
      | Packet.Ipv4 (_, Packet.Udp u) ->
          Alcotest.(check bool) "NAK for hijack" true
            (Dhcp_wire.find_message_type (Result.get_ok (Dhcp_wire.decode u.Udp.payload))
            = Some Dhcp_wire.Nak)
      | _ -> Alcotest.fail "bad reply")
  | _ -> Alcotest.fail "expected NAK");
  (* the victim's binding is untouched *)
  match Hw_dhcp.Lease_db.lookup_mac (Dhcp_server.lease_db server) (mac 1) with
  | Some lease -> Alcotest.(check bool) "binding intact" true (Ip.equal lease.Hw_dhcp.Lease_db.ip ip1)
  | None -> Alcotest.fail "victim lost its lease"

let () =
  Alcotest.run "failures"
    [
      ( "exhaustion",
        [
          Alcotest.test_case "lease pool exhaustion" `Quick test_lease_pool_exhaustion;
          Alcotest.test_case "pool recycles" `Quick test_pool_recycles_after_release;
          Alcotest.test_case "hwdb bounded under load" `Quick test_hwdb_bounded_under_sustained_load;
        ] );
      ( "malformed_input",
        [
          Alcotest.test_case "datapath vs controller garbage" `Quick
            test_datapath_survives_garbage_from_controller;
          Alcotest.test_case "router vs rpc/http garbage" `Quick test_router_survives_rpc_garbage;
          Alcotest.test_case "garbage frames" `Quick test_malformed_frames_on_the_wire;
        ] );
      ( "degraded",
        [
          Alcotest.test_case "lossy wireless station" `Quick
            test_distant_station_suffers_but_the_router_survives;
          Alcotest.test_case "failing subscription isolated" `Quick
            test_subscription_survives_failing_query;
        ] );
      ( "hostile",
        [
          Alcotest.test_case "broken usb key fail-closed" `Quick test_broken_usb_key_lifts_nothing;
          Alcotest.test_case "dhcp address hijack" `Quick test_client_requesting_foreign_address;
        ] );
    ]
