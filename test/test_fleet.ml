(* Fleet management plane: call-home registration, federated queries,
   rollup subscriptions, and resilience of all three under seeded
   faults on the call-home RPC path.

   Chaos tests follow the suite convention: the schedule is a pure
   function of CHAOS_SEED (default 7, printed on failure via the env),
   and assertions are end-state invariants — every router re-registered,
   no duplicate sessions, partial results instead of hangs. *)

module Fault = Hw_fault.Fault
module Router = Hw_router.Router
module Manager = Hw_fleet.Manager
module Agent = Hw_fleet.Agent
module Fleet_sim = Hw_fleet.Fleet_sim
module Prng = Hw_sim.Prng
module Value = Hw_hwdb.Value

let seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 7)
  | None -> 7

(* run until every agent holds a session, bounded *)
let await_registered fleet ~within =
  let mgr = Fleet_sim.manager fleet in
  let n = Fleet_sim.size fleet in
  let deadline = Fleet_sim.now fleet +. within in
  let rec step () =
    if Manager.session_count mgr < n && Fleet_sim.now fleet < deadline then begin
      Fleet_sim.run_for fleet 0.25;
      step ()
    end
  in
  step ()

let count_query = "SELECT COUNT(ts) AS n FROM Leases"

(* -- bring-up ------------------------------------------------------- *)

let test_bring_up_and_federated_select () =
  let n = 1000 in
  let fleet = Fleet_sim.create ~seed ~n () in
  await_registered fleet ~within:30.;
  let mgr = Fleet_sim.manager fleet in
  Alcotest.(check int) "all routers registered" n (Manager.session_count mgr);
  (* a COUNT over Leases returns one row per router even on an empty
     table (SQL global-aggregate semantics), so the merge must carry
     exactly one attributed row per registered router *)
  match Fleet_sim.query_sync fleet count_query with
  | None -> Alcotest.fail "federated query never completed"
  | Some o ->
      Alcotest.(check int) "every router answered" n o.Manager.ok;
      Alcotest.(check (list (pair string string))) "no errors" [] o.Manager.errors;
      Alcotest.(check int) "one row per router" n (List.length o.Manager.rows);
      Alcotest.(check (list string)) "router column prepended" [ "router"; "n" ] o.Manager.columns;
      let ids =
        List.filter_map
          (function Value.Str id :: _ -> Some id | _ -> None)
          o.Manager.rows
        |> List.sort_uniq compare
      in
      Alcotest.(check int) "distinct attribution per router" n (List.length ids)

let test_merge_carries_real_rows () =
  (* with devices, Leases has real grants; spot-check rows survive the
     merge with their router tag *)
  let n = 5 in
  let fleet = Fleet_sim.create ~seed ~n ~devices_per_home:2 () in
  await_registered fleet ~within:30.;
  Fleet_sim.run_for fleet 30.;
  match Fleet_sim.query_sync fleet "SELECT mac, action FROM Leases [RANGE 60 SECONDS]" with
  | None -> Alcotest.fail "federated query never completed"
  | Some o ->
      Alcotest.(check int) "every router answered" n o.Manager.ok;
      Alcotest.(check (list string)) "merged columns" [ "router"; "mac"; "action" ]
        o.Manager.columns;
      Alcotest.(check bool) "lease activity present" true (List.length o.Manager.rows >= n)

let test_query_with_no_fleet () =
  let loop = Hw_sim.Event_loop.create () in
  let mgr = Manager.create ~loop ~send:(fun ~to_:_ _ -> ()) () in
  let got = ref None in
  Manager.query mgr count_query ~on_done:(fun o -> got := Some o);
  match !got with
  | Some o ->
      Alcotest.(check int) "zero ok" 0 o.Manager.ok;
      Alcotest.(check int) "zero rows" 0 (List.length o.Manager.rows)
  | None -> Alcotest.fail "empty-fleet query must complete synchronously"

(* -- rollup subscriptions ------------------------------------------- *)

let test_rollup_subscription () =
  let n = 20 in
  let fleet = Fleet_sim.create ~seed ~n () in
  await_registered fleet ~within:30.;
  let mgr = Fleet_sim.manager fleet in
  let seen = Hashtbl.create 32 in
  let events = ref 0 in
  let fs =
    Manager.subscribe mgr ~statement:"SUBSCRIBE SELECT COUNT(ts) AS n FROM Leases EVERY 2 SECONDS"
      ~period:2.
      ~on_event:(fun ~router rs ->
        incr events;
        Hashtbl.replace seen router ();
        Alcotest.(check int) "one aggregate row per publish" 1 (List.length rs.Hw_hwdb.Query.rows))
  in
  Fleet_sim.run_for fleet 21.;
  Alcotest.(check int) "rollup covers every router" n (Hashtbl.length seen);
  Alcotest.(check bool)
    (Printf.sprintf "aggregated stream flows (%d events)" !events)
    true
    (!events >= n * 8);
  Alcotest.(check int) "manager counter matches" !events (Manager.rollup_events_total mgr);
  (* detaching stops the stream (modulo in-flight publishes) *)
  Manager.unsubscribe mgr fs;
  Fleet_sim.run_for fleet 1.;
  let at_detach = !events in
  Fleet_sim.run_for fleet 10.;
  Alcotest.(check int) "no rollup events after unsubscribe" at_detach !events

let test_late_registration_joins_rollup () =
  (* a fleet subscription attaches to routers that register AFTER it *)
  let n = 4 in
  let fleet = Fleet_sim.create ~seed ~n ~lease_s:6. () in
  await_registered fleet ~within:30.;
  let mgr = Fleet_sim.manager fleet in
  (* partition one router long enough to be evicted *)
  let victim = Option.get (Fleet_sim.agent fleet "r0001") in
  let inj = (Router.faults (Agent.router victim)).Fault.rpc in
  Fault.set_plan inj [ Fault.Drop 1.0 ];
  let rec until_evicted budget =
    if Manager.session_count mgr > n - 1 && budget > 0 then begin
      Fleet_sim.run_for fleet 1.;
      until_evicted (budget - 1)
    end
  in
  until_evicted 60;
  Alcotest.(check int) "victim evicted" (n - 1) (Manager.session_count mgr);
  let seen = Hashtbl.create 8 in
  let _fs =
    Manager.subscribe mgr ~statement:"SUBSCRIBE SELECT COUNT(ts) AS n FROM Leases EVERY 2 SECONDS"
      ~period:2.
      ~on_event:(fun ~router _ -> Hashtbl.replace seen router ())
  in
  Fleet_sim.run_for fleet 8.;
  Alcotest.(check int) "survivors publish" (n - 1) (Hashtbl.length seen);
  (* heal: the victim re-registers and must be swept into the rollup *)
  Fault.set_plan inj [];
  await_registered fleet ~within:60.;
  Fleet_sim.run_for fleet 8.;
  Alcotest.(check int) "healed router joins the rollup" n (Hashtbl.length seen)

(* -- resilience ----------------------------------------------------- *)

let test_partial_results_on_router_timeout () =
  (* one router permanently partitioned: the federated query must
     return partial results plus one error — and never hang *)
  let n = 10 in
  let fleet = Fleet_sim.create ~seed ~n () in
  await_registered fleet ~within:30.;
  let victim = Option.get (Fleet_sim.agent fleet "r0003") in
  Fault.set_plan (Router.faults (Agent.router victim)).Fault.rpc [ Fault.Drop 1.0 ];
  match Fleet_sim.query_sync fleet count_query with
  | None -> Alcotest.fail "federated query hung on a dead router"
  | Some o ->
      Alcotest.(check int) "others answered" (n - 1) o.Manager.ok;
      Alcotest.(check int) "one error" 1 (List.length o.Manager.errors);
      Alcotest.(check string) "error names the dead router" "r0003"
        (fst (List.hd o.Manager.errors));
      Alcotest.(check int) "partial rows" (n - 1) (List.length o.Manager.rows)

let test_fleet_chaos_drop_and_partition () =
  (* the satellite scenario: 30% bidirectional drop on every call-home
     path plus a healed partition of a third of the fleet. End state:
     every router re-registered, no duplicate sessions, and a fleet-wide
     query attributes all routers. *)
  let n = 12 in
  let lease_s = 6. in
  let fleet = Fleet_sim.create ~seed ~n ~lease_s () in
  await_registered fleet ~within:30.;
  let mgr = Fleet_sim.manager fleet in
  Alcotest.(check int) "baseline: all registered" n (Manager.session_count mgr);
  let agents = Fleet_sim.agents fleet in
  Array.iteri
    (fun i agent ->
      let inj = (Router.faults (Agent.router agent)).Fault.rpc in
      (* the injector sits on both directions of the call-home path, so
         Drop 0.3 is 30% loss each way; a third of the fleet is also
         fully partitioned for 30 s *)
      let plan =
        if i mod 3 = 0 then
          [ Fault.Drop 0.3; Fault.Partition { from_s = 5.; until_s = 35. } ]
        else [ Fault.Drop 0.3 ]
      in
      Fault.set_plan inj plan)
    agents;
  (* ride out the partition, several lease lapses and heals *)
  Fleet_sim.run_for fleet 120.;
  (* drop the noise and let the keepers converge *)
  Array.iter (fun a -> Fault.set_plan (Router.faults (Agent.router a)).Fault.rpc []) agents;
  await_registered fleet ~within:60.;
  Alcotest.(check int) "every router re-registered" n (Manager.session_count mgr);
  Alcotest.(check int) "no duplicate sessions" n (List.length (Manager.sessions mgr));
  Alcotest.(check (list string)) "session ids are the fleet"
    (List.init n (Printf.sprintf "r%04d"))
    (Manager.sessions mgr);
  let resubs = Array.fold_left (fun acc a -> acc + Agent.resubscribes a) 0 agents in
  Alcotest.(check bool)
    (Printf.sprintf "partition forced re-registrations (%d)" resubs)
    true (resubs > 0);
  match Fleet_sim.query_sync fleet count_query with
  | None -> Alcotest.fail "federated query hung after chaos"
  | Some o ->
      Alcotest.(check int) "query reaches the whole fleet" n o.Manager.ok;
      let ids =
        List.filter_map
          (function Value.Str id :: _ -> Some id | _ -> None)
          o.Manager.rows
        |> List.sort_uniq compare
      in
      Alcotest.(check int) "all routers attributed" n (List.length ids)

(* -- PRNG stream splitting ------------------------------------------ *)

let test_prng_streams_independent () =
  (* deterministic: same (seed, index) -> same stream *)
  let a = Prng.stream ~seed:42 ~index:7 in
  let b = Prng.stream ~seed:42 ~index:7 in
  for _ = 1 to 16 do
    Alcotest.(check int64) "stream is a pure function of (seed, index)" (Prng.bits64 a)
      (Prng.bits64 b)
  done;
  (* adjacent indices must not replay each other's draws: a stream
     whose state lands one golden-ratio step behind another's would
     emit the SAME values offset by one position, so any draw overlap
     at all is a red flag *)
  let draws g = Array.init 64 (fun _ -> Prng.bits64 g) in
  let overlap a b =
    let module S = Set.Make (Int64) in
    let sa = S.of_list (Array.to_list a) in
    Array.fold_left (fun acc x -> if S.mem x sa then acc + 1 else acc) 0 b
  in
  let s0 = draws (Prng.stream ~seed:42 ~index:0) in
  let s1 = draws (Prng.stream ~seed:42 ~index:1) in
  Alcotest.(check int) "hash-mixed streams share no draws" 0 (overlap s0 s1);
  (* and across fleet seeds *)
  let t0 = draws (Prng.stream ~seed:43 ~index:0) in
  Alcotest.(check int) "different fleet seeds diverge" 0 (overlap s0 t0);
  (* stream_seed folds to a usable int seed *)
  Alcotest.(check bool) "stream_seed is non-negative" true
    (Prng.stream_seed ~seed:42 ~index:9 >= 0);
  Alcotest.(check bool) "stream_seed varies by index" true
    (Prng.stream_seed ~seed:42 ~index:0 <> Prng.stream_seed ~seed:42 ~index:1)

let test_standard_home_byte_compatible () =
  (* the refactor (shared config, lazy instruments, ?loop) must not
     change what standard_home simulates: same seed -> same leases *)
  let run () =
    let home = Hw_router.Home.standard_home ~seed:7 () in
    Hw_router.Home.permit_all home;
    Hw_router.Home.run_for home 30.;
    let db = Router.db (Hw_router.Home.router home) in
    match Hw_hwdb.Database.query db "SELECT mac, ip, action FROM Leases [RANGE 30 SECONDS]" with
    | Ok rs -> Hw_hwdb.Query.result_to_strings rs
    | Error e -> Alcotest.fail e
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "lease history deterministic and non-empty" true (a = b && a <> []);
  (* distinct fleet-derived seeds genuinely diverge *)
  let home2 = Hw_router.Home.standard_home ~seed:(Prng.stream_seed ~seed:7 ~index:1) () in
  Hw_router.Home.run_for home2 5.;
  Alcotest.(check bool) "fleet stream produces a different home" true
    (Prng.stream_seed ~seed:7 ~index:1 <> 7)

let () =
  Alcotest.run "fleet"
    [
      ( "federation",
        [
          Alcotest.test_case "1k bring-up + federated SELECT" `Slow
            test_bring_up_and_federated_select;
          Alcotest.test_case "merge carries attributed rows" `Slow test_merge_carries_real_rows;
          Alcotest.test_case "empty fleet completes immediately" `Quick test_query_with_no_fleet;
        ] );
      ( "rollup",
        [
          Alcotest.test_case "SUBSCRIBE rolls up every router" `Slow test_rollup_subscription;
          Alcotest.test_case "late registration joins rollup" `Slow
            test_late_registration_joins_rollup;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "partial results on dead router" `Slow
            test_partial_results_on_router_timeout;
          Alcotest.test_case "30% drop + healed partition" `Slow
            test_fleet_chaos_drop_and_partition;
        ] );
      ( "prng",
        [
          Alcotest.test_case "stream splitting" `Quick test_prng_streams_independent;
          Alcotest.test_case "standard_home stays deterministic" `Slow
            test_standard_home_byte_compatible;
        ] );
    ]
