(* hw_hwdb: values, tables, the CQL variant (lexer/parser/executor),
   subscriptions, and the UDP RPC layer *)

open Hw_hwdb

let now = ref 0.
let clock () = !now

let fresh_db () =
  now := 0.;
  Database.create ~now:clock ()

let rows_of db q =
  match Database.query db q with
  | Ok rs -> rs.Query.rows
  | Error e -> Alcotest.failf "query %S failed: %s" q e

let q_error db q =
  match Database.query db q with
  | Ok _ -> Alcotest.failf "query %S unexpectedly succeeded" q
  | Error e -> e

let seed_flows db samples =
  (* samples: (t, src_ip, dst_port, bytes) *)
  List.iter
    (fun (t, src_ip, dst_port, bytes) ->
      now := t;
      Database.record_flow db ~proto:6 ~src_ip ~dst_ip:"93.184.216.34" ~src_port:40000
        ~dst_port ~packets:1 ~bytes)
    samples

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let test_value_validate () =
  let schema = [ ("a", Value.T_int); ("b", Value.T_str); ("c", Value.T_real) ] in
  Alcotest.(check bool) "valid" true
    (Value.validate schema [ Value.Int 1; Value.Str "x"; Value.Real 2. ] = Ok ());
  Alcotest.(check bool) "int into real" true
    (Value.validate schema [ Value.Int 1; Value.Str "x"; Value.Int 2 ] = Ok ());
  Alcotest.(check bool) "arity" true
    (Result.is_error (Value.validate schema [ Value.Int 1 ]));
  Alcotest.(check bool) "type" true
    (Result.is_error (Value.validate schema [ Value.Str "no"; Value.Str "x"; Value.Real 0. ]))

let test_value_compare () =
  Alcotest.(check bool) "int vs real" true (Value.compare_values (Value.Int 2) (Value.Real 2.5) < 0);
  Alcotest.(check bool) "string order" true (Value.compare_values (Value.Str "a") (Value.Str "b") < 0);
  Alcotest.(check bool) "numeric equal" true (Value.equal (Value.Int 3) (Value.Real 3.));
  Alcotest.check_raises "str vs int" (Invalid_argument "cannot compare varchar with integer")
    (fun () -> ignore (Value.compare_values (Value.Str "a") (Value.Int 1)))

(* ------------------------------------------------------------------ *)
(* Tables & windows                                                    *)
(* ------------------------------------------------------------------ *)

let test_table_insert_and_windows () =
  let t = Table.create ~name:"T" ~capacity:100 [ ("v", Value.T_int) ] in
  List.iter
    (fun (ts, v) -> Result.get_ok (Table.insert t ~now:ts [ Value.Int v ]))
    [ (1., 10); (2., 20); (3., 30); (4., 40) ];
  Alcotest.(check int) "all" 4 (List.length (Table.scan_window t `All));
  (* the window is the closed interval [now - range, now]: the row stamped
     exactly at t = 2 is inside a 2 s window evaluated at t = 4 *)
  Alcotest.(check int) "range 2s from t=4" 3
    (List.length (Table.scan_window t (`Last_seconds (2., 4.))));
  Alcotest.(check int) "last 3 rows" 3 (List.length (Table.scan_window t (`Last_rows 3)));
  Alcotest.(check int) "now" 1 (List.length (Table.scan_window t (`Now 4.)))

let test_window_now_is_ordering_based () =
  let t = Table.create ~name:"T" ~capacity:16 [ ("v", Value.T_int) ] in
  (* the producer clock accumulates 0.1 ten times; its final stamp
     (0.9999999999999999) is not bitwise-equal to the consumer's
     10 *. 0.1 = 1.0, so a float-equality [NOW] would find nothing *)
  let clock = ref 0. in
  for i = 1 to 10 do
    clock := !clock +. 0.1;
    Result.get_ok (Table.insert t ~now:!clock [ Value.Int i ])
  done;
  let consumer_now = 10. *. 0.1 in
  Alcotest.(check bool) "clocks differ bitwise" true (!clock <> consumer_now);
  (match Table.scan_window t (`Now consumer_now) with
  | [ tu ] -> Alcotest.(check bool) "newest row" true (tu.Value.values.(0) = Value.Int 10)
  | l -> Alcotest.failf "NOW at consumer clock: expected 1 row, got %d" (List.length l));
  (* all rows sharing the newest stamp <= now form the batch *)
  let t2 = Table.create ~name:"T2" ~capacity:8 [ ("v", Value.T_int) ] in
  List.iter
    (fun (ts, v) -> Result.get_ok (Table.insert t2 ~now:ts [ Value.Int v ]))
    [ (1., 1); (2., 2); (2., 3) ];
  Alcotest.(check int) "whole batch at newest ts" 2
    (List.length (Table.scan_window t2 (`Now 2.5)));
  Alcotest.(check int) "older instant" 1 (List.length (Table.scan_window t2 (`Now 1.5)));
  Alcotest.(check int) "before any data" 0 (List.length (Table.scan_window t2 (`Now 0.5)))

let test_window_boundary_closed () =
  let t = Table.create ~name:"T" ~capacity:8 [ ("v", Value.T_int) ] in
  List.iter
    (fun (ts, v) -> Result.get_ok (Table.insert t ~now:ts [ Value.Int v ]))
    [ (1., 1); (2., 2); (3., 3) ];
  (* ts = 2 sits exactly on now -. range and must be included *)
  let rows = Table.scan_window t (`Last_seconds (1., 3.)) in
  Alcotest.(check bool) "boundary row included" true
    (List.map (fun (tu : Value.tuple) -> tu.Value.values.(0)) rows
    = [ Value.Int 2; Value.Int 3 ])

let test_window_wraparound () =
  let t = Table.create ~name:"T" ~capacity:8 [ ("v", Value.T_int) ] in
  for i = 1 to 20 do
    Result.get_ok (Table.insert t ~now:(float_of_int i) [ Value.Int i ])
  done;
  (* the ring wrapped past capacity twice; it holds ts 13..20 *)
  let vals w = List.map (fun (tu : Value.tuple) -> tu.Value.values.(0)) (Table.scan_window t w) in
  Alcotest.(check int) "all" 8 (List.length (vals `All));
  Alcotest.(check bool) "range straddles the wrap point" true
    (vals (`Last_seconds (3., 20.)) = [ Value.Int 17; Value.Int 18; Value.Int 19; Value.Int 20 ]);
  Alcotest.(check bool) "last rows" true
    (vals (`Last_rows 3) = [ Value.Int 18; Value.Int 19; Value.Int 20 ]);
  Alcotest.(check int) "last rows clamped to length" 8 (List.length (vals (`Last_rows 100)));
  Alcotest.(check bool) "now" true (vals (`Now 20.) = [ Value.Int 20 ])

let prop_window_scan_matches_reference =
  (* the index-backed scan returns exactly what a naive filter over the
     full ring returns, for every window kind, including wrapped rings and
     duplicate timestamps *)
  QCheck.Test.make ~name:"index-backed windows match the naive scan" ~count:300
    QCheck.(triple (int_range 1 12) (small_list (int_bound 3)) (int_bound 24))
    (fun (cap, steps, wparam) ->
      let t = Table.create ~name:"T" ~capacity:cap [ ("v", Value.T_int) ] in
      let clock = ref 0. in
      List.iteri
        (fun i step ->
          clock := !clock +. (float_of_int step /. 4.);
          Result.get_ok (Table.insert t ~now:!clock [ Value.Int i ]))
        steps;
      let now = !clock in
      let all = Table.scan t in
      let reference = function
        | `All -> all
        | `Last_seconds (r, n) -> List.filter (fun (tu : Value.tuple) -> tu.Value.ts >= n -. r) all
        | `Last_rows k ->
            let len = List.length all in
            List.filteri (fun i _ -> i >= len - k) all
        | `Now n -> (
            match List.filter (fun (tu : Value.tuple) -> tu.Value.ts <= n) all with
            | [] -> []
            | visible ->
                let newest = (List.nth visible (List.length visible - 1)).Value.ts in
                List.filter (fun (tu : Value.tuple) -> tu.Value.ts = newest) all)
      in
      List.for_all
        (fun w -> Table.scan_window t w = reference w)
        [
          `All;
          `Last_seconds (float_of_int wparam /. 2., now);
          `Last_rows (wparam mod 7);
          `Now (now -. (float_of_int wparam /. 8.));
        ])

let test_table_eviction_is_fifo () =
  let t = Table.create ~name:"T" ~capacity:3 [ ("v", Value.T_int) ] in
  for i = 1 to 5 do
    Result.get_ok (Table.insert t ~now:(float_of_int i) [ Value.Int i ])
  done;
  let vals = List.map (fun (tu : Value.tuple) -> tu.Value.values.(0)) (Table.scan t) in
  Alcotest.(check bool) "oldest dropped" true
    (vals = [ Value.Int 3; Value.Int 4; Value.Int 5 ]);
  Alcotest.(check int) "total counted" 5 (Table.total_inserted t)

let test_table_triggers () =
  let t = Table.create ~name:"T" ~capacity:4 [ ("v", Value.T_int) ] in
  let fired = ref 0 in
  Table.on_insert t (fun _ -> incr fired);
  Result.get_ok (Table.insert t ~now:0. [ Value.Int 1 ]);
  Result.get_ok (Table.insert t ~now:0. [ Value.Int 2 ]);
  Alcotest.(check int) "trigger per insert" 2 !fired;
  Alcotest.(check bool) "bad insert rejected" true
    (Result.is_error (Table.insert t ~now:0. [ Value.Str "no" ]));
  Alcotest.(check int) "no trigger on reject" 2 !fired

let test_trigger_registration_order () =
  (* triggers are stored newest-first for O(1) registration but must keep
     firing in registration order *)
  let t = Table.create ~name:"T" ~capacity:4 [ ("v", Value.T_int) ] in
  let seen = ref [] in
  for i = 1 to 5 do
    Table.on_insert t (fun _ -> seen := i :: !seen)
  done;
  Result.get_ok (Table.insert t ~now:0. [ Value.Int 1 ]);
  Alcotest.(check (list int)) "fired oldest registration first" [ 1; 2; 3; 4; 5 ]
    (List.rev !seen)

(* ------------------------------------------------------------------ *)
(* Lexer / parser                                                      *)
(* ------------------------------------------------------------------ *)

let parse_ok s =
  match Parser.parse s with
  | Ok stmt -> stmt
  | Error e -> Alcotest.failf "parse %S: %s" s e

let test_lexer_basics () =
  let toks = Lexer.tokenize "SELECT a, 'it''s' FROM t [RANGE 2.5 SECONDS] WHERE x <> 3" in
  Alcotest.(check bool) "has string with escaped quote" true
    (List.exists (function Lexer.Str_lit "it's" -> true | _ -> false) toks);
  Alcotest.(check bool) "has real" true
    (List.exists (function Lexer.Real_lit 2.5 -> true | _ -> false) toks);
  Alcotest.(check bool) "neq symbol" true
    (List.exists (function Lexer.Sym "<>" -> true | _ -> false) toks)

let test_lexer_errors () =
  Alcotest.(check bool) "unterminated string" true
    (match Lexer.tokenize "SELECT 'oops" with
    | exception Lexer.Lex_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "illegal char" true
    (match Lexer.tokenize "SELECT @" with exception Lexer.Lex_error _ -> true | _ -> false)

let test_parse_select_shapes () =
  (match parse_ok "SELECT * FROM Flows" with
  | Ast.Select { items = [ Ast.Sel_star ]; from = [ ("Flows", None) ]; window = Ast.W_all; _ } ->
      ()
  | _ -> Alcotest.fail "basic select");
  (match parse_ok "SELECT a, b AS bb FROM t [ROWS 5] WHERE a > 1 LIMIT 3" with
  | Ast.Select { items = [ _; Ast.Sel_expr (_, Some "bb") ]; window = Ast.W_rows 5; limit = Some 3; where = Some _; _ }
    ->
      ()
  | _ -> Alcotest.fail "select with options");
  (match parse_ok "SELECT COUNT(*) FROM t [NOW]" with
  | Ast.Select { items = [ Ast.Sel_agg (Ast.Count, None, None) ]; window = Ast.W_now; _ } -> ()
  | _ -> Alcotest.fail "count star");
  (match parse_ok "SELECT SUM(bytes) AS total FROM Flows [RANGE 30 SECONDS] GROUP BY src_ip" with
  | Ast.Select
      { items = [ Ast.Sel_agg (Ast.Sum, Some _, Some "total") ]; group_by = [ (None, "src_ip") ]; _ } ->
      ()
  | _ -> Alcotest.fail "sum group by");
  match parse_ok "SELECT f.src_ip, l.mac FROM Flows f, Leases l WHERE f.src_ip = l.ip" with
  | Ast.Select { from = [ ("Flows", Some "f"); ("Leases", Some "l") ]; _ } -> ()
  | _ -> Alcotest.fail "join with aliases"

let test_parse_other_statements () =
  (match parse_ok "INSERT INTO t VALUES (1, 'x', -2.5, true)" with
  | Ast.Insert ("t", [ Value.Int 1; Value.Str "x"; Value.Real -2.5; Value.Bool true ]) -> ()
  | _ -> Alcotest.fail "insert");
  (match parse_ok "CREATE TABLE t (a INTEGER, b VARCHAR) CAPACITY 64" with
  | Ast.Create { table = "t"; schema = [ ("a", Value.T_int); ("b", Value.T_str) ]; capacity = Some 64 }
    ->
      ()
  | _ -> Alcotest.fail "create");
  (match parse_ok "SUBSCRIBE SELECT * FROM t EVERY 5 SECONDS" with
  | Ast.Subscribe (_, 5.) -> ()
  | _ -> Alcotest.fail "subscribe");
  match parse_ok "UNSUBSCRIBE 3" with
  | Ast.Unsubscribe 3 -> ()
  | _ -> Alcotest.fail "unsubscribe"

let test_parse_expression_precedence () =
  match parse_ok "SELECT a FROM t WHERE a + 2 * b > 4 AND NOT c OR d" with
  | Ast.Select { where = Some (Ast.Binop (Ast.Or, Ast.Binop (Ast.And, gt, _not), _d)); _ } -> (
      match gt with
      | Ast.Binop (Ast.Gt, Ast.Binop (Ast.Add, _, Ast.Binop (Ast.Mul, _, _)), _) -> ()
      | _ -> Alcotest.fail "arith precedence")
  | _ -> Alcotest.fail "boolean precedence"

let test_parse_errors () =
  List.iter
    (fun bad ->
      match Parser.parse bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [
      "";
      "SELECT";
      "SELECT FROM t";
      "SELECT * FROM";
      "SELECT * FROM t [RANGE SECONDS]";
      "SELECT * FROM t WHERE";
      "INSERT INTO t VALUES ()";
      "CREATE TABLE t ()";
      "SELECT * FROM t trailing garbage here ,";
      "SUBSCRIBE SELECT * FROM t EVERY SECONDS";
    ]

let prop_stmt_print_parse_fixpoint =
  (* statements printed by Ast.to_string re-parse to an identical AST *)
  let stmt_gen =
    let open QCheck.Gen in
    let ident = map (Printf.sprintf "c%d") (int_bound 5) in
    let table = map (Printf.sprintf "t%d") (int_bound 3) in
    let lit =
      oneof
        [
          map (fun i -> Value.Int i) small_signed_int;
          map (fun s -> Value.Str s) (string_size ~gen:(char_range 'a' 'z') (int_bound 6));
          map (fun b -> Value.Bool b) bool;
        ]
    in
    let expr =
      oneof
        [
          map (fun (q, n) -> Ast.Col (q, n)) (pair (oneof [ return None; map Option.some table ]) ident);
          map (fun v -> Ast.Lit v) lit;
          map2 (fun a b -> Ast.Binop (Ast.Add, Ast.Col (None, a), Ast.Lit b)) ident lit;
        ]
    in
    let window =
      oneof
        [
          return Ast.W_all;
          map (fun n -> Ast.W_rows (1 + n)) small_nat;
          map (fun n -> Ast.W_range_sec (float_of_int (1 + n))) small_nat;
          return Ast.W_now;
        ]
    in
    let item =
      oneof
        [
          return Ast.Sel_star;
          map (fun e -> Ast.Sel_expr (e, None)) expr;
          map (fun (e, a) -> Ast.Sel_expr (e, Some a)) (pair expr ident);
          map (fun e -> Ast.Sel_agg (Ast.Sum, Some e, Some "s")) expr;
          return (Ast.Sel_agg (Ast.Count, None, None));
        ]
    in
    let select =
      map
        (fun ((items, tbl, window), (where, group_by, limit)) ->
          {
            Ast.items;
            from = [ (tbl, None) ];
            window;
            where;
            group_by;
            having = None;
            order_by = None;
            limit;
          })
        (pair
           (triple (list_size (int_range 1 3) item) table window)
           (triple
              (oneof [ return None; map (fun e -> Some (Ast.Binop (Ast.Gt, e, Ast.Lit (Value.Int 0)))) expr ])
              (oneof [ return []; map (fun c -> [ (None, c) ]) ident ])
              (oneof [ return None; map (fun n -> Some (1 + n)) small_nat ])))
    in
    oneof
      [
        map (fun s -> Ast.Select s) select;
        map2 (fun t vs -> Ast.Insert (t, vs)) table (list_size (int_range 1 3) lit);
        map (fun (s, p) -> Ast.Subscribe (s, float_of_int (1 + p))) (pair select small_nat);
        map (fun n -> Ast.Unsubscribe n) small_nat;
      ]
  in
  QCheck.Test.make ~name:"print/parse fixpoint" ~count:300
    (QCheck.make stmt_gen ~print:Ast.to_string)
    (fun stmt ->
      match Parser.parse (Ast.to_string stmt) with
      | Ok stmt' -> Ast.to_string stmt = Ast.to_string stmt'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Query execution                                                     *)
(* ------------------------------------------------------------------ *)

let test_query_projection_where () =
  let db = fresh_db () in
  seed_flows db [ (1., "10.0.0.1", 80, 100); (2., "10.0.0.2", 443, 200); (3., "10.0.0.1", 80, 300) ];
  let rows = rows_of db "SELECT src_ip, bytes FROM Flows WHERE src_ip = '10.0.0.1'" in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  let rows = rows_of db "SELECT bytes FROM Flows WHERE bytes > 150 AND dst_port = 443" in
  Alcotest.(check bool) "filtered" true (rows = [ [ Value.Int 200 ] ])

let test_query_arithmetic () =
  let db = fresh_db () in
  seed_flows db [ (1., "10.0.0.1", 80, 100) ];
  match rows_of db "SELECT bytes * 8 AS bits, bytes / 10, bytes % 30 FROM Flows" with
  | [ [ Value.Int 800; Value.Int 10; Value.Int 10 ] ] -> ()
  | rows -> Alcotest.failf "unexpected rows (%d)" (List.length rows)

let test_query_window () =
  let db = fresh_db () in
  seed_flows db [ (1., "a", 80, 1); (5., "b", 80, 2); (9., "c", 80, 3) ];
  now := 10.;
  Alcotest.(check int) "range 6s" 2
    (List.length (rows_of db "SELECT * FROM Flows [RANGE 6 SECONDS]"));
  (* closed interval: the row stamped exactly at now - 5 is in the window *)
  Alcotest.(check int) "range boundary row included" 2
    (List.length (rows_of db "SELECT * FROM Flows [RANGE 5 SECONDS]"));
  Alcotest.(check int) "rows 1" 1 (List.length (rows_of db "SELECT * FROM Flows [ROWS 1]"));
  Alcotest.(check int) "full" 3 (List.length (rows_of db "SELECT * FROM Flows"))

let test_query_group_by_aggregates () =
  let db = fresh_db () in
  seed_flows db
    [ (1., "10.0.0.1", 80, 100); (2., "10.0.0.1", 80, 300); (3., "10.0.0.2", 443, 50) ];
  let rows =
    rows_of db
      "SELECT src_ip, COUNT(*) AS n, SUM(bytes) AS total, AVG(bytes) AS mean, MIN(bytes), \
       MAX(bytes) FROM Flows GROUP BY src_ip ORDER BY total DESC"
  in
  match rows with
  | [
   [ Value.Str "10.0.0.1"; Value.Int 2; Value.Real 400.; Value.Real 200.; Value.Int 100; Value.Int 300 ];
   [ Value.Str "10.0.0.2"; Value.Int 1; Value.Real 50.; Value.Real 50.; Value.Int 50; Value.Int 50 ];
  ] ->
      ()
  | _ ->
      Alcotest.failf "unexpected group-by result: %s"
        (String.concat ";"
           (List.map (fun r -> String.concat "," (List.map Value.to_string r)) rows))

let test_query_aggregate_without_group () =
  let db = fresh_db () in
  seed_flows db [ (1., "a", 80, 10); (2., "b", 80, 20) ];
  match rows_of db "SELECT COUNT(*) AS n, SUM(bytes) AS s FROM Flows" with
  | [ [ Value.Int 2; Value.Real 30. ] ] -> ()
  | _ -> Alcotest.fail "aggregate without group"

let test_global_aggregate_over_empty () =
  let db = fresh_db () in
  (* SQL semantics: a global aggregate over zero rows yields one row *)
  (match rows_of db "SELECT COUNT(*) AS n FROM Flows" with
  | [ [ Value.Int 0 ] ] -> ()
  | _ -> Alcotest.fail "count over empty");
  (match rows_of db "SELECT SUM(bytes) AS s FROM Flows WHERE bytes > 999" with
  | [ [ Value.Real 0. ] ] -> ()
  | _ -> Alcotest.fail "sum over empty");
  (* but projecting a plain column from zero rows is an error *)
  Alcotest.(check bool) "column from empty group" true
    (String.length (q_error db "SELECT src_ip, COUNT(*) FROM Flows") > 0)

let test_query_having () =
  let db = fresh_db () in
  seed_flows db
    [ (1., "10.0.0.1", 80, 100); (2., "10.0.0.1", 80, 300); (3., "10.0.0.2", 443, 50) ];
  (* aggregate subject *)
  (match
     rows_of db
       "SELECT src_ip, SUM(bytes) AS b FROM Flows GROUP BY src_ip HAVING SUM(bytes) > 100"
   with
  | [ [ Value.Str "10.0.0.1"; Value.Real 400. ] ] -> ()
  | rows -> Alcotest.failf "having agg: %d rows" (List.length rows));
  (* count subject *)
  (match rows_of db "SELECT src_ip FROM Flows GROUP BY src_ip HAVING COUNT(*) >= 2" with
  | [ [ Value.Str "10.0.0.1" ] ] -> ()
  | _ -> Alcotest.fail "having count");
  (* group-column subject *)
  (match
     rows_of db "SELECT src_ip FROM Flows GROUP BY src_ip HAVING src_ip = '10.0.0.2'"
   with
  | [ [ Value.Str "10.0.0.2" ] ] -> ()
  | _ -> Alcotest.fail "having column");
  (* print/parse fixpoint for HAVING *)
  let q = "SELECT src_ip FROM Flows GROUP BY src_ip HAVING SUM(bytes) > 100" in
  match Parser.parse q with
  | Ok stmt -> Alcotest.(check string) "roundtrip" q (Ast.to_string stmt)
  | Error e -> Alcotest.fail e

let test_query_join () =
  let db = fresh_db () in
  now := 1.;
  Database.record_lease db ~mac:"m1" ~ip:"10.0.0.1" ~hostname:"laptop" ~action:"grant";
  Database.record_lease db ~mac:"m2" ~ip:"10.0.0.2" ~hostname:"phone" ~action:"grant";
  seed_flows db [ (2., "10.0.0.1", 80, 111) ];
  let rows =
    rows_of db
      "SELECT l.hostname, f.bytes FROM Flows f, Leases l WHERE f.src_ip = l.ip"
  in
  Alcotest.(check bool) "joined" true (rows = [ [ Value.Str "laptop"; Value.Int 111 ] ])

let test_query_order_limit () =
  let db = fresh_db () in
  seed_flows db [ (1., "a", 80, 3); (2., "b", 80, 1); (3., "c", 80, 2) ];
  (match rows_of db "SELECT src_ip, bytes FROM Flows ORDER BY bytes ASC LIMIT 2" with
  | [ [ Value.Str "b"; _ ]; [ Value.Str "c"; _ ] ] -> ()
  | _ -> Alcotest.fail "order asc limit");
  match rows_of db "SELECT src_ip, bytes FROM Flows ORDER BY bytes DESC LIMIT 1" with
  | [ [ Value.Str "a"; _ ] ] -> ()
  | _ -> Alcotest.fail "order desc"

let test_query_ts_column () =
  let db = fresh_db () in
  seed_flows db [ (5., "a", 80, 1) ];
  match rows_of db "SELECT ts FROM Flows" with
  | [ [ Value.Ts 5. ] ] -> ()
  | _ -> Alcotest.fail "implicit ts column"

let test_query_errors () =
  let db = fresh_db () in
  seed_flows db [ (1., "a", 80, 1) ];
  Alcotest.(check bool) "unknown table" true
    (String.length (q_error db "SELECT * FROM nope") > 0);
  Alcotest.(check bool) "unknown column" true
    (String.length (q_error db "SELECT wat FROM Flows") > 0);
  Alcotest.(check bool) "non-boolean where" true
    (String.length (q_error db "SELECT * FROM Flows WHERE bytes") > 0);
  Alcotest.(check bool) "star with aggregate" true
    (String.length (q_error db "SELECT *, COUNT(*) FROM Flows") > 0);
  Alcotest.(check bool) "order by unknown output" true
    (String.length (q_error db "SELECT src_ip FROM Flows ORDER BY bytes") > 0);
  (* column resolution happens per-row, so the join needs data on both
     sides for the ambiguity to surface *)
  Database.record_lease db ~mac:"m" ~ip:"10.0.0.9" ~hostname:"h" ~action:"grant";
  Alcotest.(check bool) "ambiguous column in join" true
    (String.length (q_error db "SELECT ts FROM Flows f, Leases l") > 0)

let test_division_by_zero_is_error () =
  let db = fresh_db () in
  seed_flows db [ (1., "a", 80, 1) ];
  Alcotest.(check bool) "div by zero" true
    (String.length (q_error db "SELECT bytes / 0 FROM Flows") > 0)

(* ------------------------------------------------------------------ *)
(* Database statements & subscriptions                                 *)
(* ------------------------------------------------------------------ *)

let test_execute_create_insert_select () =
  let db = fresh_db () in
  Result.get_ok (Database.execute db "CREATE TABLE sensors (room VARCHAR, temp REAL) CAPACITY 8")
  |> ignore;
  Result.get_ok (Database.execute db "INSERT INTO sensors VALUES ('kitchen', 21.5)") |> ignore;
  Result.get_ok (Database.execute db "INSERT INTO sensors VALUES ('hall', 19.0)") |> ignore;
  match Database.execute db "SELECT room FROM sensors WHERE temp > 20" with
  | Ok (Some rs) -> Alcotest.(check bool) "selected" true (rs.Query.rows = [ [ Value.Str "kitchen" ] ])
  | _ -> Alcotest.fail "select failed"

let test_execute_duplicate_create () =
  let db = fresh_db () in
  match Database.execute db "CREATE TABLE Flows (x INTEGER)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate table accepted"

let test_subscription_delivery () =
  let db = fresh_db () in
  let received = ref [] in
  let sel = Result.get_ok (Parser.parse_select "SELECT COUNT(*) AS n FROM Flows") in
  let id =
    Database.subscribe db ~query:sel ~period:5. ~callback:(fun rs -> received := rs :: !received)
  in
  Alcotest.(check int) "registered" 1 (Database.subscription_count db);
  now := 4.;
  Database.tick db;
  Alcotest.(check int) "not due yet" 0 (List.length !received);
  now := 5.;
  Database.tick db;
  Alcotest.(check int) "delivered at period" 1 (List.length !received);
  now := 6.;
  Database.tick db;
  Alcotest.(check int) "not again early" 1 (List.length !received);
  now := 30.;
  Database.tick db;
  (* catch-up collapses missed firings into one *)
  Alcotest.(check int) "no replay burst" 2 (List.length !received);
  Alcotest.(check bool) "unsubscribe works" true (Database.unsubscribe db id);
  Alcotest.(check bool) "idempotent" false (Database.unsubscribe db id)

let test_subscription_shared_evaluation () =
  let db = fresh_db () in
  let sel = Result.get_ok (Parser.parse_select "SELECT COUNT(*) AS n FROM Flows") in
  let results = ref [] in
  (* the first subscriber's callback inserts a row; the second shares the
     query text, so it must receive the same pre-insert snapshot instead
     of paying a second evaluation that would observe the new row *)
  ignore
    (Database.subscribe db ~query:sel ~period:1. ~callback:(fun rs ->
         results := ("a", rs) :: !results;
         Database.record_flow db ~proto:6 ~src_ip:"x" ~dst_ip:"y" ~src_port:1 ~dst_port:2
           ~packets:1 ~bytes:1));
  ignore
    (Database.subscribe db ~query:sel ~period:1. ~callback:(fun rs ->
         results := ("b", rs) :: !results));
  now := 1.;
  Database.tick db;
  match List.rev !results with
  | [ ("a", ra); ("b", rb) ] ->
      Alcotest.(check bool) "identical snapshot" true (ra.Query.rows = rb.Query.rows);
      Alcotest.(check bool) "count is pre-insert" true (ra.Query.rows = [ [ Value.Int 0 ] ])
  | l -> Alcotest.failf "expected two deliveries, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* ECA triggers                                                        *)
(* ------------------------------------------------------------------ *)

let exec_ok db stmt =
  match Database.execute db stmt with
  | Ok r -> r
  | Error e -> Alcotest.failf "execute %S: %s" stmt e

let test_trigger_fires_on_condition () =
  let db = fresh_db () in
  ignore (exec_ok db "CREATE TABLE Alerts (what VARCHAR, who VARCHAR, amount INTEGER)");
  ignore
    (exec_ok db
       "ON INSERT INTO Flows WHEN bytes > 1000 DO INSERT INTO Alerts VALUES ('big-flow', \
        src_ip, bytes * 8)");
  Alcotest.(check int) "registered" 1 (Database.trigger_count db);
  seed_flows db [ (1., "10.0.0.1", 80, 500); (2., "10.0.0.2", 80, 5000); (3., "10.0.0.3", 80, 900) ];
  match rows_of db "SELECT what, who, amount FROM Alerts" with
  | [ [ Value.Str "big-flow"; Value.Str "10.0.0.2"; Value.Int 40000 ] ] -> ()
  | rows -> Alcotest.failf "alerts wrong (%d rows)" (List.length rows)

let test_trigger_without_condition_and_drop () =
  let db = fresh_db () in
  ignore (exec_ok db "CREATE TABLE Log (ip VARCHAR)");
  let id =
    match exec_ok db "ON INSERT INTO Flows DO INSERT INTO Log VALUES (src_ip)" with
    | Some { Query.rows = [ [ Value.Int id ] ]; _ } -> id
    | _ -> Alcotest.fail "no trigger id"
  in
  seed_flows db [ (1., "a", 80, 1); (2., "b", 80, 1) ];
  Alcotest.(check int) "all inserts mirrored" 2 (List.length (rows_of db "SELECT * FROM Log"));
  ignore (exec_ok db (Printf.sprintf "DROP TRIGGER %d" id));
  Alcotest.(check int) "dropped" 0 (Database.trigger_count db);
  seed_flows db [ (3., "c", 80, 1) ];
  Alcotest.(check int) "no longer fires" 2 (List.length (rows_of db "SELECT * FROM Log"));
  Alcotest.(check bool) "double drop fails" true
    (Result.is_error (Database.execute db (Printf.sprintf "DROP TRIGGER %d" id)))

let test_trigger_chain_and_loop_guard () =
  let db = fresh_db () in
  ignore (exec_ok db "CREATE TABLE A (v INTEGER)");
  ignore (exec_ok db "CREATE TABLE B (v INTEGER)");
  (* A -> B -> A: the depth guard must stop the ping-pong *)
  ignore (exec_ok db "ON INSERT INTO A DO INSERT INTO B VALUES (v + 1)");
  ignore (exec_ok db "ON INSERT INTO B DO INSERT INTO A VALUES (v + 1)");
  ignore (exec_ok db "INSERT INTO A VALUES (0)");
  let count t = List.length (rows_of db (Printf.sprintf "SELECT * FROM %s" t)) in
  Alcotest.(check bool) "bounded" true (count "A" + count "B" <= 10);
  Alcotest.(check bool) "chained at least once" true (count "B" >= 1)

let test_trigger_validation () =
  let db = fresh_db () in
  Alcotest.(check bool) "unknown watch" true
    (Result.is_error (Database.execute db "ON INSERT INTO Nope DO INSERT INTO Flows VALUES (1)"));
  Alcotest.(check bool) "unknown target" true
    (Result.is_error (Database.execute db "ON INSERT INTO Flows DO INSERT INTO Nope VALUES (1)"));
  Alcotest.(check bool) "arity mismatch" true
    (Result.is_error
       (Database.execute db "ON INSERT INTO Flows DO INSERT INTO Leases VALUES (src_ip)"));
  (* a trigger whose action produces a type error is isolated at runtime *)
  ignore (exec_ok db "CREATE TABLE L (n INTEGER)");
  ignore (exec_ok db "ON INSERT INTO Flows DO INSERT INTO L VALUES (src_ip)");
  seed_flows db [ (1., "a", 80, 1) ];
  Alcotest.(check int) "bad action skipped" 0 (List.length (rows_of db "SELECT * FROM L"));
  Alcotest.(check int) "source insert unaffected" 1
    (List.length (rows_of db "SELECT * FROM Flows"))

let test_trigger_statement_roundtrip () =
  let q = "ON INSERT INTO Flows WHEN (bytes > 1000) DO INSERT INTO Alerts VALUES (src_ip, (bytes * 8))" in
  match Parser.parse q with
  | Ok stmt -> Alcotest.(check string) "print/parse" q (Ast.to_string stmt)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* RPC                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rpc_codec_roundtrip () =
  let rs =
    {
      Query.columns = [ "a"; "b" ];
      rows = [ [ Value.Int 1; Value.Str "x" ]; [ Value.Real 2.5; Value.Bool false ] ];
    }
  in
  let messages =
    [
      Rpc.Request { seq = 7l; statement = "SELECT * FROM Flows"; ctx = None };
      Rpc.Request
        {
          seq = 8l;
          statement = "SELECT * FROM Flows";
          ctx = Some { Rpc.trace_id = 0x1122334455667788; parent_span = 42 };
        };
      Rpc.Response_ok { seq = 7l; result = Some rs };
      Rpc.Response_ok { seq = 8l; result = None };
      Rpc.Response_error { seq = 9l; message = "nope" };
      Rpc.Publish { subscription = 3; result = rs };
    ]
  in
  List.iter
    (fun msg ->
      match Rpc.decode (Rpc.encode msg) with
      | Ok msg' -> Alcotest.(check bool) "roundtrip" true (msg = msg')
      | Error e -> Alcotest.failf "rpc decode: %s" e)
    messages

(* A context-free peer predates the trace-context trailer: its frames end
   at the statement. They must decode to [ctx = None], be byte-identical
   to what we emit for [ctx = None], and be served — and a trailer whose
   flag byte is 0 must read as "no context", not garbage. *)
let test_rpc_old_format_interop () =
  let module Wire = Hw_util.Wire in
  let statement = "SELECT * FROM Flows" in
  let old_frame =
    let w = Wire.Writer.create () in
    Wire.Writer.u16 w 0x4877;
    (* magic *)
    Wire.Writer.u8 w 1;
    (* version *)
    Wire.Writer.u8 w 1;
    (* type = Request *)
    Wire.Writer.u32 w 7l;
    Wire.Writer.u16 w (String.length statement);
    Wire.Writer.string w statement;
    Wire.Writer.contents w
  in
  (match Rpc.decode old_frame with
  | Ok (Rpc.Request { seq = 7l; statement = s; ctx = None }) ->
      Alcotest.(check string) "statement survives" statement s
  | Ok _ -> Alcotest.fail "old frame decoded to the wrong message"
  | Error e -> Alcotest.failf "old frame rejected: %s" e);
  (* our own context-free encoding IS the old format, byte for byte *)
  Alcotest.(check string) "ctx-free encode is byte-identical to the old frame" old_frame
    (Rpc.encode (Rpc.Request { seq = 7l; statement; ctx = None }));
  (* a present trailer with flag byte 0 means "no context" *)
  let flag0 = old_frame ^ "\x00" in
  (match Rpc.decode flag0 with
  | Ok (Rpc.Request { ctx = None; _ }) -> ()
  | Ok _ -> Alcotest.fail "flag-0 trailer produced a context"
  | Error e -> Alcotest.failf "flag-0 trailer rejected: %s" e);
  (* and the server serves the old frame like any other request *)
  let db = fresh_db () in
  seed_flows db [ (1., "10.0.0.1", 80, 99) ];
  let replies = ref [] in
  let server =
    Rpc.Server.create ~db ~send:(fun ~to_:_ datagram -> replies := datagram :: !replies) ()
  in
  Rpc.Server.handle_datagram server ~from:"legacy" old_frame;
  match !replies with
  | [ datagram ] -> (
      match Rpc.decode datagram with
      | Ok (Rpc.Response_ok { seq = 7l; result = Some rs }) ->
          Alcotest.(check int) "legacy peer got its rows" 1 (List.length rs.Query.rows)
      | _ -> Alcotest.fail "legacy request not answered with rows")
  | l -> Alcotest.failf "expected 1 reply, got %d" (List.length l)

let test_rpc_rejects_garbage () =
  Alcotest.(check bool) "bad magic" true (Result.is_error (Rpc.decode "XXlolno"));
  Alcotest.(check bool) "empty" true (Result.is_error (Rpc.decode ""))

let test_rpc_rejects_oversized_strings () =
  (* string lengths travel as u16: a 70000-byte value must raise instead
     of silently truncating the length field and corrupting the frame *)
  let big = String.make 70000 'x' in
  (match Rpc.encode (Rpc.Request { seq = 1l; statement = big; ctx = None }) with
  | exception Rpc.Encode_error _ -> ()
  | _ -> Alcotest.fail "oversized statement encoded");
  (let rs = { Query.columns = [ "c" ]; rows = [ [ Value.Str big ] ] } in
   match Rpc.encode (Rpc.Publish { subscription = 1; result = rs }) with
   | exception Rpc.Encode_error _ -> ()
   | _ -> Alcotest.fail "oversized value encoded");
  (* exactly 65535 bytes is the largest representable string and roundtrips *)
  let edge = String.make 0xffff 'y' in
  match Rpc.decode (Rpc.encode (Rpc.Request { seq = 2l; statement = edge; ctx = None })) with
  | Ok (Rpc.Request { statement; _ }) ->
      Alcotest.(check int) "edge length preserved" 0xffff (String.length statement)
  | _ -> Alcotest.fail "edge-length string did not roundtrip"

let make_rpc_pair db =
  let server_out = Queue.create () in
  let server =
    Rpc.Server.create ~db ~send:(fun ~to_ datagram -> Queue.add (to_, datagram) server_out) ()
  in
  let client_out = Queue.create () in
  let client = Rpc.Client.create ~send:(fun datagram -> Queue.add datagram client_out) () in
  let pump () =
    while not (Queue.is_empty client_out) do
      Rpc.Server.handle_datagram server ~from:"c1" (Queue.pop client_out)
    done;
    while not (Queue.is_empty server_out) do
      let to_, datagram = Queue.pop server_out in
      if to_ = "c1" then Rpc.Client.handle_datagram client datagram
    done
  in
  (server, client, pump)

let test_rpc_query_roundtrip () =
  let db = fresh_db () in
  seed_flows db [ (1., "10.0.0.1", 80, 99) ];
  let _server, client, pump = make_rpc_pair db in
  let answer = ref None in
  Rpc.Client.request client "SELECT src_ip, bytes FROM Flows" ~on_reply:(fun r -> answer := Some r);
  pump ();
  (match !answer with
  | Some (Ok (Some rs)) ->
      Alcotest.(check bool) "row" true (rs.Query.rows = [ [ Value.Str "10.0.0.1"; Value.Int 99 ] ])
  | _ -> Alcotest.fail "no answer");
  Alcotest.(check int) "nothing pending" 0 (Rpc.Client.pending_count client)

let test_rpc_error_reply () =
  let db = fresh_db () in
  let _server, client, pump = make_rpc_pair db in
  let answer = ref None in
  Rpc.Client.request client "SELECT broken FROM" ~on_reply:(fun r -> answer := Some r);
  pump ();
  match !answer with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "expected error reply"

let test_rpc_subscribe_publish () =
  let db = fresh_db () in
  let server, client, pump = make_rpc_pair db in
  let published = ref [] in
  Rpc.Client.on_publish client (fun ~subscription rs -> published := (subscription, rs) :: !published);
  let sub_reply = ref None in
  Rpc.Client.request client "SUBSCRIBE SELECT COUNT(*) AS n FROM Flows EVERY 2 SECONDS"
    ~on_reply:(fun r -> sub_reply := Some r);
  pump ();
  Alcotest.(check int) "one subscriber" 1 (Rpc.Server.subscriber_count server);
  now := 2.;
  Database.tick db;
  pump ();
  now := 4.;
  Database.tick db;
  pump ();
  Alcotest.(check int) "two publications" 2 (List.length !published);
  (* drop the client: subscriptions die with it *)
  Alcotest.(check int) "dropped" 1 (Rpc.Server.drop_client server "c1");
  now := 6.;
  Database.tick db;
  pump ();
  Alcotest.(check int) "no more publications" 2 (List.length !published)

let prop_where_filter_sound =
  (* every row a WHERE clause returns satisfies the predicate, and none
     that satisfy it are dropped *)
  QCheck.Test.make ~name:"WHERE returns exactly the satisfying rows" ~count:200
    QCheck.(pair (small_list (pair small_nat small_nat)) (int_bound 100))
    (fun (rows, threshold) ->
      let db = fresh_db () in
      List.iteri
        (fun i (a, b) ->
          now := float_of_int i;
          Database.record_flow db ~proto:6 ~src_ip:"h" ~dst_ip:"d" ~src_port:(a mod 1000)
            ~dst_port:80 ~packets:1 ~bytes:(b mod 200))
        rows;
      let q = Printf.sprintf "SELECT src_port, bytes FROM Flows WHERE bytes > %d" threshold in
      match Database.query db q with
      | Error _ -> false
      | Ok rs ->
          let expected =
            List.filter (fun (_, b) -> b mod 200 > threshold) rows
            |> List.map (fun (a, b) -> [ Value.Int (a mod 1000); Value.Int (b mod 200) ])
          in
          rs.Query.rows = expected)

let prop_limit_is_prefix =
  QCheck.Test.make ~name:"LIMIT n is a prefix of the unlimited result" ~count:100
    QCheck.(pair (small_list small_nat) (int_range 1 5))
    (fun (rows, n) ->
      let db = fresh_db () in
      List.iteri
        (fun i v ->
          now := float_of_int i;
          Database.record_flow db ~proto:6 ~src_ip:"h" ~dst_ip:"d" ~src_port:v ~dst_port:80
            ~packets:1 ~bytes:1)
        rows;
      match
        ( Database.query db "SELECT src_port FROM Flows",
          Database.query db (Printf.sprintf "SELECT src_port FROM Flows LIMIT %d" n) )
      with
      | Ok full, Ok limited ->
          List.length limited.Query.rows = min n (List.length full.Query.rows)
          && List.filteri (fun i _ -> i < n) full.Query.rows = limited.Query.rows
      | _ -> false)

let test_recorder_persists_publications () =
  let db = fresh_db () in
  let server, client, pump = make_rpc_pair db in
  ignore server;
  let rec_now = ref 0. in
  let recorder =
    Recorder.attach
      ~now:(fun () -> !rec_now)
      ~client ~statement:"SUBSCRIBE SELECT COUNT(*) AS n FROM Flows EVERY 2 SECONDS" ()
  in
  Alcotest.(check bool) "pending before pump" true (Recorder.status recorder = Recorder.Pending);
  pump ();
  (match Recorder.status recorder with
  | Recorder.Active _ -> ()
  | _ -> Alcotest.fail "subscription not active");
  seed_flows db [ (0.5, "a", 80, 10) ];
  now := 2.;
  rec_now := 2.;
  Database.tick db;
  pump ();
  seed_flows db [ (3., "b", 80, 20) ];
  now := 4.;
  rec_now := 4.;
  Database.tick db;
  pump ();
  Alcotest.(check int) "two snapshots" 2 (Recorder.snapshot_count recorder);
  (match Recorder.last recorder with
  | Some (4., { Query.rows = [ [ Value.Int 2 ] ]; _ }) -> ()
  | _ -> Alcotest.fail "last snapshot wrong");
  let csv = Recorder.to_csv recorder in
  Alcotest.(check bool) "csv header" true (String.length csv > 0 && String.sub csv 0 6 = "time,n");
  Alcotest.(check int) "csv lines" 3 (List.length (String.split_on_char '\n' (String.trim csv)));
  (* detach unsubscribes and freezes the log *)
  Recorder.detach recorder;
  pump ();
  now := 6.;
  Database.tick db;
  pump ();
  Alcotest.(check int) "frozen after detach" 2 (Recorder.snapshot_count recorder);
  Alcotest.(check int) "server-side subscription gone" 0 (Database.subscription_count db)

let test_recorder_rejects_non_subscribe () =
  let db = fresh_db () in
  let _server, client, pump = make_rpc_pair db in
  let r =
    Recorder.attach ~now:(fun () -> 0.) ~client ~statement:"SELECT * FROM Flows" ()
  in
  pump ();
  match Recorder.status r with
  | Recorder.Failed _ -> ()
  | _ -> Alcotest.fail "non-subscribe accepted"

let prop_rpc_decode_never_crashes =
  QCheck.Test.make ~name:"rpc decode total on junk" ~count:300 QCheck.string (fun s ->
      match Rpc.decode s with Ok _ | Error _ -> true)

let () =
  Alcotest.run "hw_hwdb"
    [
      ( "values",
        [
          Alcotest.test_case "validate" `Quick test_value_validate;
          Alcotest.test_case "compare" `Quick test_value_compare;
        ] );
      ( "tables",
        [
          Alcotest.test_case "windows" `Quick test_table_insert_and_windows;
          Alcotest.test_case "now is ordering-based" `Quick test_window_now_is_ordering_based;
          Alcotest.test_case "closed window boundary" `Quick test_window_boundary_closed;
          Alcotest.test_case "wrap-around windows" `Quick test_window_wraparound;
          QCheck_alcotest.to_alcotest prop_window_scan_matches_reference;
          Alcotest.test_case "fifo eviction" `Quick test_table_eviction_is_fifo;
          Alcotest.test_case "triggers" `Quick test_table_triggers;
          Alcotest.test_case "trigger registration order" `Quick test_trigger_registration_order;
        ] );
      ( "language",
        [
          Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
          Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
          Alcotest.test_case "select shapes" `Quick test_parse_select_shapes;
          Alcotest.test_case "other statements" `Quick test_parse_other_statements;
          Alcotest.test_case "precedence" `Quick test_parse_expression_precedence;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          QCheck_alcotest.to_alcotest prop_stmt_print_parse_fixpoint;
        ] );
      ( "execution",
        [
          Alcotest.test_case "projection + where" `Quick test_query_projection_where;
          Alcotest.test_case "arithmetic" `Quick test_query_arithmetic;
          Alcotest.test_case "windows" `Quick test_query_window;
          Alcotest.test_case "group by aggregates" `Quick test_query_group_by_aggregates;
          Alcotest.test_case "aggregate without group" `Quick test_query_aggregate_without_group;
          Alcotest.test_case "global aggregate over empty" `Quick test_global_aggregate_over_empty;
          Alcotest.test_case "having" `Quick test_query_having;
          Alcotest.test_case "join" `Quick test_query_join;
          Alcotest.test_case "order + limit" `Quick test_query_order_limit;
          Alcotest.test_case "ts column" `Quick test_query_ts_column;
          Alcotest.test_case "errors" `Quick test_query_errors;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero_is_error;
          QCheck_alcotest.to_alcotest prop_where_filter_sound;
          QCheck_alcotest.to_alcotest prop_limit_is_prefix;
        ] );
      ( "database",
        [
          Alcotest.test_case "create/insert/select" `Quick test_execute_create_insert_select;
          Alcotest.test_case "duplicate create" `Quick test_execute_duplicate_create;
          Alcotest.test_case "subscriptions" `Quick test_subscription_delivery;
          Alcotest.test_case "shared evaluation" `Quick test_subscription_shared_evaluation;
        ] );
      ( "triggers",
        [
          Alcotest.test_case "fires on condition" `Quick test_trigger_fires_on_condition;
          Alcotest.test_case "unconditional + drop" `Quick test_trigger_without_condition_and_drop;
          Alcotest.test_case "chain loop guard" `Quick test_trigger_chain_and_loop_guard;
          Alcotest.test_case "validation" `Quick test_trigger_validation;
          Alcotest.test_case "statement roundtrip" `Quick test_trigger_statement_roundtrip;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_rpc_codec_roundtrip;
          Alcotest.test_case "old-format interop" `Quick test_rpc_old_format_interop;
          Alcotest.test_case "rejects garbage" `Quick test_rpc_rejects_garbage;
          Alcotest.test_case "rejects oversized strings" `Quick test_rpc_rejects_oversized_strings;
          Alcotest.test_case "query roundtrip" `Quick test_rpc_query_roundtrip;
          Alcotest.test_case "error reply" `Quick test_rpc_error_reply;
          Alcotest.test_case "subscribe/publish/drop" `Quick test_rpc_subscribe_publish;
          Alcotest.test_case "recorder persists" `Quick test_recorder_persists_publications;
          Alcotest.test_case "recorder rejects non-subscribe" `Quick
            test_recorder_rejects_non_subscribe;
          QCheck_alcotest.to_alcotest prop_rpc_decode_never_crashes;
        ] );
    ]
