(* End-to-end tests of the composed Homework router: simulated devices,
   the full OpenFlow path, DHCP/DNS modules, hwdb, control API, policy. *)

open Hw_packet
module Home = Hw_router.Home
module Router = Hw_router.Router
module Device = Hw_sim.Device
module App_profile = Hw_sim.App_profile
module Dhcp_server = Hw_dhcp.Dhcp_server
module Json = Hw_json.Json
module Http = Hw_control_api.Http

let mac i = Mac.local (0x60 + i)

let small_home ?(permit = true) ?start ?(apps = [ App_profile.web ]) n =
  let home = Home.create ?start () in
  let devices =
    List.init n (fun i ->
        let config =
          if i mod 2 = 0 then
            Device.wireless ~distance_m:(4. +. float_of_int i) ~name:(Printf.sprintf "dev%d" i)
              ~mac:(mac i) apps
          else Device.wired ~name:(Printf.sprintf "dev%d" i) ~mac:(mac i) apps
        in
        if permit then Dhcp_server.permit (Router.dhcp (Home.router home)) (mac i);
        Home.add_device home config)
  in
  (home, devices)

let query_rows home q =
  match Hw_hwdb.Database.query (Router.db (Home.router home)) q with
  | Ok rs -> rs.Hw_hwdb.Query.rows
  | Error e -> Alcotest.failf "query %S: %s" q e

let http home req = Router.http (Home.router home) req

(* ------------------------------------------------------------------ *)

let test_devices_join_and_get_distinct_leases () =
  let home, devices = small_home 4 in
  Home.run_for home 20.;
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Device.name d ^ " bound")
        true
        (Device.dhcp_state d = Device.Bound))
    devices;
  let ips = List.filter_map Device.ip devices in
  Alcotest.(check int) "all addressed" 4 (List.length ips);
  Alcotest.(check int) "distinct" 4 (List.length (List.sort_uniq Ip.compare ips));
  (* Leases hwdb table saw the grants *)
  let grants = query_rows home "SELECT mac FROM Leases WHERE action = 'grant'" in
  Alcotest.(check int) "four grants" 4 (List.length grants)

let test_traffic_reaches_internet_and_flows_recorded () =
  let home, _ = small_home 2 in
  Home.run_for home 60.;
  Alcotest.(check bool) "internet saw traffic" true (Hw_sim.Internet.rx_bytes (Home.internet home) > 0);
  let rows = query_rows home "SELECT SUM(bytes) AS b FROM Flows" in
  (match rows with
  | [ [ v ] ] ->
      Alcotest.(check bool) "bytes recorded" true
        (Option.value (Hw_hwdb.Value.as_float v) ~default:0. > 0.)
  | _ -> Alcotest.fail "no flow sum");
  (* flows get installed so the fast path carries most packets *)
  Alcotest.(check bool) "flows installed" true (Router.flows_installed (Home.router home) > 0)

let test_wireless_links_recorded () =
  let home, _ = small_home 3 in
  Home.run_for home 10.;
  let rows = query_rows home "SELECT mac, AVG(rssi) AS r FROM Links GROUP BY mac" in
  (* devices 0 and 2 are wireless *)
  Alcotest.(check int) "two stations" 2 (List.length rows);
  List.iter
    (fun row ->
      match row with
      | [ _; r ] ->
          let rssi = Option.value (Hw_hwdb.Value.as_float r) ~default:0. in
          Alcotest.(check bool) "plausible rssi" true (rssi < -20. && rssi > -100.)
      | _ -> Alcotest.fail "bad row")
    rows

let test_unpermitted_device_stays_off () =
  let home, devices = small_home ~permit:false 1 in
  Home.run_for home 30.;
  let d = List.hd devices in
  Alcotest.(check bool) "denied" true (Device.dhcp_state d = Device.Denied);
  Alcotest.(check bool) "no address" true (Device.ip d = None);
  (* shows up as pending in the control API *)
  let resp = http home (Http.request Http.GET "/api/devices") in
  match Json.of_string resp.Http.body with
  | Json.List [ dev ] ->
      Alcotest.(check string) "pending" "pending" (Json.get_string (Json.member "state" dev))
  | _ -> Alcotest.fail "device list wrong"

let test_control_api_permit_end_to_end () =
  let home, devices = small_home ~permit:false 1 in
  Home.run_for home 5.;
  let d = List.hd devices in
  let resp =
    http home
      (Http.request Http.POST
         (Printf.sprintf "/api/devices/%s/permit" (Mac.to_string (mac 0))))
  in
  Alcotest.(check int) "permit accepted" 200 resp.Http.status;
  (* the device keeps retrying; within a backoff period it joins *)
  Home.run_for home 40.;
  Alcotest.(check bool) "bound after permit" true (Device.dhcp_state d = Device.Bound)

let test_control_api_deny_revokes_and_blocks () =
  let home, devices = small_home 1 in
  Home.run_for home 15.;
  let d = List.hd devices in
  Alcotest.(check bool) "bound first" true (Device.dhcp_state d = Device.Bound);
  let flows_before = Router.flows_installed (Home.router home) in
  Alcotest.(check bool) "has flows" true (flows_before >= 0);
  let resp =
    http home
      (Http.request Http.POST (Printf.sprintf "/api/devices/%s/deny" (Mac.to_string (mac 0))))
  in
  Alcotest.(check int) "deny accepted" 200 resp.Http.status;
  (* lease revoked server-side *)
  Alcotest.(check int) "no active leases" 0
    (List.length (Hw_dhcp.Lease_db.active (Dhcp_server.lease_db (Router.dhcp (Home.router home)))));
  (* revocation recorded in hwdb *)
  let revokes = query_rows home "SELECT mac FROM Leases WHERE action = 'revoke'" in
  Alcotest.(check bool) "revoke recorded" true (List.length revokes >= 1)

let test_dns_policy_blocks_lookup () =
  let home, devices = small_home ~apps:[] 1 in
  Home.run_for home 10.;
  let d = List.hd devices in
  (* restrict the device to facebook only *)
  Hw_dns.Dns_proxy.set_policy (Router.dns (Home.router home)) (mac 0)
    (Hw_dns.Dns_proxy.Allow_only [ "facebook.com" ]);
  let fb = ref None and yt = ref None in
  Device.resolve d "www.facebook.com" (fun r -> fb := Some r);
  Home.run_for home 6.;
  Device.resolve d "www.youtube.com" (fun r -> yt := Some r);
  Home.run_for home 6.;
  (match !fb with
  | Some (Some _) -> ()
  | _ -> Alcotest.fail "facebook lookup failed");
  match !yt with
  | Some None -> ()
  | _ -> Alcotest.fail "youtube lookup should have been blocked"

let test_upstream_flow_admission_blocks_traffic () =
  let home, devices = small_home ~apps:[] 1 in
  Home.run_for home 10.;
  let d = List.hd devices in
  (* learn both addresses while unrestricted *)
  let fb = ref None and yt = ref None in
  Device.resolve d "www.facebook.com" (fun r -> fb := r);
  Device.resolve d "www.youtube.com" (fun r -> yt := r);
  Home.run_for home 6.;
  let fb_ip = Option.get !fb and yt_ip = Option.get !yt in
  Hw_dns.Dns_proxy.set_policy (Router.dns (Home.router home)) (mac 0)
    (Hw_dns.Dns_proxy.Allow_only [ "facebook.com" ]);
  let rx_before = (Device.stats d).Device.rx_packets in
  (* traffic to facebook flows: SYN elicits a SYN/ACK back *)
  Device.send_tcp_segment d ~dst_ip:fb_ip ~dst_port:80 ~src_port:41000
    ~flags:Hw_packet.Tcp.syn_flag "";
  Home.run_for home 2.;
  let rx_after_fb = (Device.stats d).Device.rx_packets in
  Alcotest.(check bool) "facebook traffic answered" true (rx_after_fb > rx_before);
  (* traffic to youtube is dropped at the router. The first attempt also
     triggers an ARP exchange (which the device does receive), so warm it
     up once, then verify the second attempt is completely dead. *)
  Device.send_tcp_segment d ~dst_ip:yt_ip ~dst_port:80 ~src_port:41001
    ~flags:Hw_packet.Tcp.syn_flag "";
  Home.run_for home 2.;
  Alcotest.(check bool) "drop flow installed" true
    (Router.blocked_flow_count (Home.router home) >= 1);
  let rx_snapshot = (Device.stats d).Device.rx_packets in
  Device.send_tcp_segment d ~dst_ip:yt_ip ~dst_port:80 ~src_port:41001
    ~flags:Hw_packet.Tcp.syn_flag "";
  Home.run_for home 2.;
  let rx_after_yt = (Device.stats d).Device.rx_packets in
  Alcotest.(check int) "youtube traffic dead" rx_snapshot rx_after_yt

let test_policy_usb_cycle () =
  (* compressed family_policy scenario *)
  let start = Hw_time.at ~day:Hw_time.Tue ~hour:17 ~min:0 in
  let home, devices = small_home ~permit:false ~start ~apps:[] 1 in
  let router = Home.router home in
  Hw_policy.Policy.define_group (Router.policy router) "kids" [ mac 0 ];
  Hw_policy.Policy.add_rule (Router.policy router)
    {
      Hw_policy.Policy.rule_id = "r1";
      group = "kids";
      services = [ Hw_policy.Policy.facebook ];
      schedule = Hw_policy.Schedule.weekdays ~start_hour:16 ~end_hour:21 ();
      requires_token = Some "tok";
    };
  Router.apply_policies_now router;
  Home.run_for home 40.;
  let d = List.hd devices in
  Alcotest.(check bool) "offline without key" true (Device.dhcp_state d = Device.Denied);
  (* insert the key *)
  (match
     Router.insert_usb router ~device:"sdb1"
       (Hw_policy.Usb_key.render { Hw_policy.Usb_key.token = "tok"; rules = [] })
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Home.run_for home 60.;
  Alcotest.(check bool) "online with key" true (Device.dhcp_state d = Device.Bound);
  (* dns restricted to facebook *)
  let yt = ref None in
  Device.resolve d "www.youtube.com" (fun r -> yt := Some r);
  Home.run_for home 6.;
  Alcotest.(check bool) "youtube blocked" true (!yt = Some None);
  (* pull the key: device loses the network *)
  Router.remove_usb router ~device:"sdb1";
  Home.run_for home 2.;
  Alcotest.(check int) "lease revoked" 0
    (List.length (Hw_dhcp.Lease_db.active (Dhcp_server.lease_db (Router.dhcp router))))

let test_bandwidth_view_reflects_traffic () =
  (* p2p sessions start every ~8 s, so traffic is guaranteed in a minute *)
  let home, _ = small_home ~apps:[ App_profile.p2p ] 2 in
  Home.run_for home 90.;
  let view =
    Hw_ui.Bandwidth_view.create ~window_seconds:60. ~label_of_ip:(Home.label_of_ip home)
      ~db:(Router.db (Home.router home)) ()
  in
  match Hw_ui.Bandwidth_view.refresh view with
  | Ok rows ->
      Alcotest.(check bool) "has devices" true (List.length rows >= 1);
      let top = List.hd rows in
      Alcotest.(check bool) "labelled with device name" true
        (String.length top.Hw_ui.Bandwidth_view.device_label >= 3
        && String.sub top.Hw_ui.Bandwidth_view.device_label 0 3 = "dev");
      Alcotest.(check bool) "p2p classified" true
        (List.exists
           (fun a -> a.Hw_ui.Bandwidth_view.app = "p2p")
           top.Hw_ui.Bandwidth_view.apps);
      Alcotest.(check bool) "render mentions device" true
        (String.length (Hw_ui.Bandwidth_view.render view) > 0)
  | Error e -> Alcotest.fail e

let test_control_ui_drag_cycle () =
  let home, _ = small_home ~permit:false 2 in
  Home.run_for home 10.;
  let ui = Hw_ui.Control_ui.create ~http:(Router.http (Home.router home)) in
  (match Hw_ui.Control_ui.refresh ui with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "both requesting" 2
    (List.length (Hw_ui.Control_ui.tabs_in ui Hw_ui.Control_ui.Requesting));
  (match Hw_ui.Control_ui.drag ui ~mac:(Mac.to_string (mac 0)) Hw_ui.Control_ui.Permitted_col with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Hw_ui.Control_ui.drag ui ~mac:(Mac.to_string (mac 1)) Hw_ui.Control_ui.Denied_col with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "one permitted" 1
    (List.length (Hw_ui.Control_ui.tabs_in ui Hw_ui.Control_ui.Permitted_col));
  Alcotest.(check int) "one denied" 1
    (List.length (Hw_ui.Control_ui.tabs_in ui Hw_ui.Control_ui.Denied_col));
  Home.run_for home 40.;
  let d0 = Option.get (Home.device_by_name home "dev0") in
  let d1 = Option.get (Home.device_by_name home "dev1") in
  Alcotest.(check bool) "permitted joined" true (Device.dhcp_state d0 = Device.Bound);
  Alcotest.(check bool) "denied stayed off" true (Device.dhcp_state d1 = Device.Denied)

let test_artifact_fed_from_router_events () =
  let home, _ = small_home ~permit:false 1 in
  let artifact = Hw_ui.Artifact.create () in
  Hw_ui.Artifact.set_mode artifact Hw_ui.Artifact.Event_flashes;
  Dhcp_server.on_event (Router.dhcp (Home.router home)) (fun ev ->
      match ev with
      | Dhcp_server.Lease_granted _ -> Hw_ui.Artifact.notify_lease artifact `Grant
      | _ -> ());
  Dhcp_server.permit (Router.dhcp (Home.router home)) (mac 0);
  Home.run_for home 40.;
  Hw_ui.Artifact.tick artifact ~dt:0.25;
  Alcotest.(check bool) "grant flashing green" true
    (String.contains (Hw_ui.Artifact.render_ascii artifact) 'G')

let test_artifact_driver_from_measurement_plane () =
  let home, _ = small_home ~apps:[ App_profile.p2p ] 2 in
  let router = Home.router home in
  let artifact = Hw_ui.Artifact.create () in
  let driver =
    Hw_ui.Artifact_driver.attach ~period:5. ~db:(Router.db router) ~artifact ()
  in
  Home.run_for home 60.;
  Alcotest.(check bool) "subscriptions delivered" true
    (Hw_ui.Artifact_driver.deliveries driver > 5);
  Alcotest.(check bool) "bandwidth flowed into the artifact" true
    (Hw_ui.Artifact_driver.last_bandwidth_bps driver > 0.);
  Alcotest.(check bool) "peak tracked" true (Hw_ui.Artifact.peak_bps artifact > 0.);
  (* a lease grant during the run must queue a green flash *)
  Hw_ui.Artifact.set_mode artifact Hw_ui.Artifact.Event_flashes;
  Hw_dhcp.Dhcp_server.permit (Router.dhcp router) (mac 9);
  let late = Home.add_device home (Device.wired ~name:"late" ~mac:(mac 9) []) in
  Home.run_for home 10.;
  Alcotest.(check bool) "late device bound" true (Device.dhcp_state late = Device.Bound);
  Hw_ui.Artifact.tick artifact ~dt:0.25;
  Alcotest.(check bool) "green flash from Leases trigger" true
    (String.contains (Hw_ui.Artifact.render_ascii artifact) 'G');
  (* detach stops further updates *)
  Hw_ui.Artifact_driver.detach driver;
  let before = Hw_ui.Artifact_driver.deliveries driver in
  Home.run_for home 20.;
  Alcotest.(check int) "no deliveries after detach" before
    (Hw_ui.Artifact_driver.deliveries driver)

let test_rpc_through_router () =
  let home, _ = small_home 1 in
  let router = Home.router home in
  let inbox = ref [] in
  Router.set_rpc_send router (fun ~to_:_ datagram -> inbox := datagram :: !inbox);
  Home.run_for home 10.;
  let client = Hw_hwdb.Rpc.Client.create ~send:(fun d -> Router.rpc_datagram router ~from:"app" d) () in
  let rows = ref None in
  Hw_hwdb.Rpc.Client.request client "SELECT COUNT(*) AS n FROM Leases" ~on_reply:(fun r ->
      rows := Some r);
  (* replies arrive via the send hook; feed them back *)
  List.iter (Hw_hwdb.Rpc.Client.handle_datagram client) !inbox;
  match !rows with
  | Some (Ok (Some rs)) -> Alcotest.(check int) "one column" 1 (List.length rs.Hw_hwdb.Query.columns)
  | _ -> Alcotest.fail "rpc through the router failed"

let test_nat_mode () =
  let wan_ip = Ip.of_octets 81 2 3 4 in
  let home = Home.create ~nat:wan_ip () in
  let router = Home.router home in
  Alcotest.(check bool) "nat on" true (Router.nat_enabled router);
  Dhcp_server.permit (Router.dhcp router) (mac 0);
  let d =
    Home.add_device home (Device.wired ~name:"natted" ~mac:(mac 0) [ App_profile.web ])
  in
  Home.run_for home 60.;
  Alcotest.(check bool) "device bound" true (Device.dhcp_state d = Device.Bound);
  (* traffic flowed both ways despite translation *)
  let st = Device.stats d in
  Alcotest.(check bool) "responses returned through NAT" true (st.Device.rx_bytes > 1000);
  Alcotest.(check bool) "bindings allocated" true (Router.nat_binding_count router > 0);
  (* every concurrent inbound translation flow has a distinct WAN port *)
  let inbound_ports =
    Hw_datapath.Flow_table.entries (Hw_datapath.Datapath.flow_table (Router.datapath router))
    |> List.filter_map (fun (e : Hw_datapath.Flow_entry.t) ->
           match e.Hw_datapath.Flow_entry.entry_match.Hw_openflow.Ofp_match.nw_dst with
           | Some (ip, 32) when Ip.equal ip wan_ip ->
               e.Hw_datapath.Flow_entry.entry_match.Hw_openflow.Ofp_match.tp_dst
           | _ -> None)
  in
  Alcotest.(check int) "wan ports unique" (List.length inbound_ports)
    (List.length (List.sort_uniq compare inbound_ports));
  (* the ISP never saw a private source address except the router's own
     DNS-forwarding address *)
  let leaks = Hw_sim.Internet.lan_source_leaks (Home.internet home) in
  let device_ip = Option.get (Device.ip d) in
  Alcotest.(check bool) "device address never leaked" true
    (not (List.exists (fun (ip, _) -> Ip.equal ip device_ip) leaks));
  (* per-device attribution survives NAT in the measurement plane *)
  (match
     Hw_hwdb.Database.query (Router.db router)
       (Printf.sprintf "SELECT SUM(bytes) AS b FROM Flows WHERE dst_ip = '%s'"
          (Ip.to_string device_ip))
   with
  | Ok { Hw_hwdb.Query.rows = [ [ v ] ]; _ } ->
      Alcotest.(check bool) "downloads attributed to the device" true
        (Option.value (Hw_hwdb.Value.as_float v) ~default:0. > 0.)
  | _ -> Alcotest.fail "no Flows data");
  (match
     Hw_hwdb.Database.query (Router.db router)
       (Printf.sprintf "SELECT COUNT(*) AS n FROM Flows WHERE dst_ip = '%s'"
          (Ip.to_string wan_ip))
   with
  | Ok { Hw_hwdb.Query.rows = [ [ Hw_hwdb.Value.Int 0 ] ]; _ } -> ()
  | _ -> Alcotest.fail "WAN address leaked into the measurement plane");
  (* bindings are garbage-collected when flows idle out *)
  Device.stop d;
  Home.run_for home 30.;
  Alcotest.(check int) "bindings collected" 0 (Router.nat_binding_count router);
  Alcotest.(check int) "flows drained" 0 (Router.flows_installed router)

let test_flows_idle_out () =
  let home, _ = small_home ~apps:[ App_profile.web ] 1 in
  Home.run_for home 30.;
  let had = Router.flows_installed (Home.router home) in
  Alcotest.(check bool) "flows existed" true (had > 0);
  (* stop traffic and wait beyond the idle timeout *)
  List.iter Device.stop (Home.devices home);
  Home.run_for home 30.;
  Alcotest.(check int) "table drained" 0 (Router.flows_installed (Home.router home))

let test_soak_one_hour_bounded_state () =
  (* one virtual hour of a full household with NAT: every stateful
     structure must stay bounded (flows idle out, hwdb rings cap, NAT
     bindings die with their flows, leases renew rather than accrete) *)
  let home = Home.create ~nat:(Ip.of_octets 81 2 3 4) () in
  let router = Home.router home in
  List.iteri
    (fun i apps ->
      Dhcp_server.permit (Router.dhcp router) (mac i);
      ignore
        (Home.add_device home
           (if i mod 2 = 0 then
              Device.wireless ~distance_m:(3. +. (3. *. float_of_int i))
                ~name:(Printf.sprintf "soak%d" i) ~mac:(mac i) apps
            else Device.wired ~name:(Printf.sprintf "soak%d" i) ~mac:(mac i) apps)))
    [
      [ App_profile.web; App_profile.video ];
      [ App_profile.p2p ];
      [ App_profile.voip; App_profile.https ];
      [ App_profile.iot_telemetry ];
    ];
  let max_flows = ref 0 and max_bindings = ref 0 in
  for _ = 1 to 60 do
    Home.run_for home 60.;
    max_flows := max !max_flows (Router.flows_installed router);
    max_bindings := max !max_bindings (Router.nat_binding_count router)
  done;
  (* all devices still online after an hour of renewals *)
  List.iter
    (fun d ->
      Alcotest.(check bool) (Device.name d ^ " still bound") true
        (Device.dhcp_state d = Device.Bound))
    (Home.devices home);
  (* state stayed bounded *)
  Alcotest.(check bool) "flow table bounded" true (!max_flows < 500);
  Alcotest.(check bool) "nat bindings bounded" true (!max_bindings < 200);
  Alcotest.(check int) "exactly four leases" 4
    (List.length (Hw_dhcp.Lease_db.active (Dhcp_server.lease_db (Router.dhcp router))));
  (* hwdb rings are at their capacity ceiling, not beyond *)
  let flows_table = Option.get (Hw_hwdb.Database.table (Router.db router) "Flows") in
  Alcotest.(check bool) "hwdb ring capped" true
    (Hw_hwdb.Table.length flows_table <= Hw_hwdb.Table.capacity flows_table);
  Alcotest.(check bool) "hwdb saw sustained inserts" true
    (Hw_hwdb.Table.total_inserted flows_table > Hw_hwdb.Table.capacity flows_table);
  (* renewals happened (lease_time 3600, renew at half-life) *)
  let renews = query_rows home "SELECT COUNT(*) AS n FROM Leases WHERE action = 'renew'" in
  (match renews with
  | [ [ Hw_hwdb.Value.Int n ] ] -> Alcotest.(check bool) "renewals recorded" true (n >= 4)
  | _ -> Alcotest.fail "no renew count");
  (* and the internet never saw a private source (NAT held for an hour) *)
  Alcotest.(check int) "no lan leaks" 0
    (List.length (Hw_sim.Internet.lan_source_leaks (Home.internet home)))

let test_device_isolation () =
  let probe ~isolate =
    let home = Home.create ~isolate_devices:isolate () in
    let router = Home.router home in
    Dhcp_server.permit (Router.dhcp router) (mac 0);
    Dhcp_server.permit (Router.dhcp router) (mac 1);
    let a = Home.add_device home (Device.wired ~name:"a" ~mac:(mac 0) []) in
    let b = Home.add_device home (Device.wired ~name:"b" ~mac:(mac 1) []) in
    Home.run_for home 10.;
    let b_ip = Option.get (Device.ip b) in
    (* a sends to b twice (the first send also does ARP, which devices
       answer themselves and isolation does not touch) *)
    let before = (Device.stats b).Device.rx_packets in
    Device.send_udp a ~dst_ip:b_ip ~dst_port:9999 ~src_port:9998 "hello";
    Home.run_for home 2.;
    let mid = (Device.stats b).Device.rx_packets in
    Device.send_udp a ~dst_ip:b_ip ~dst_port:9999 ~src_port:9998 "again";
    Home.run_for home 2.;
    let after = (Device.stats b).Device.rx_packets in
    (* the second send is pure UDP: did it arrive? *)
    (after > mid, mid > before, Router.blocked_flow_count router)
  in
  let open_udp, _, open_blocked = probe ~isolate:false in
  Alcotest.(check bool) "open home: device-to-device flows" true open_udp;
  Alcotest.(check int) "open home: nothing blocked" 0 open_blocked;
  let iso_udp, _, iso_blocked = probe ~isolate:true in
  Alcotest.(check bool) "isolated home: flow refused" false iso_udp;
  Alcotest.(check bool) "isolated home: drop flow installed" true (iso_blocked >= 1)

let test_determinism_per_seed () =
  (* the README promises deterministic runs per seed *)
  let run seed =
    let home = Home.standard_home ~seed () in
    Home.permit_all home;
    Home.run_for home 60.;
    let router = Home.router home in
    ( Router.packet_ins router,
      Router.flows_installed router,
      List.map
        (fun d -> (Device.name d, (Device.stats d).Device.tx_bytes, (Device.stats d).Device.rx_bytes))
        (Home.devices home) )
  in
  let a = run 42 and b = run 42 and c = run 43 in
  Alcotest.(check bool) "same seed identical" true (a = b);
  Alcotest.(check bool) "different seed differs" false (a = c)

let test_status_endpoint () =
  let home, _ = small_home 2 in
  Home.run_for home 10.;
  let resp = http home (Http.request Http.GET "/api/status") in
  Alcotest.(check int) "200" 200 resp.Http.status;
  let j = Json.of_string resp.Http.body in
  Alcotest.(check int) "device count" 2 (Json.to_int (Json.member "devices" j));
  Alcotest.(check bool) "packet_ins positive" true (Json.to_int (Json.member "packet_ins" j) > 0)

let () =
  Alcotest.run "integration"
    [
      ( "join",
        [
          Alcotest.test_case "devices join, distinct leases" `Quick
            test_devices_join_and_get_distinct_leases;
          Alcotest.test_case "traffic + Flows table" `Quick
            test_traffic_reaches_internet_and_flows_recorded;
          Alcotest.test_case "Links table" `Quick test_wireless_links_recorded;
          Alcotest.test_case "unpermitted stays off" `Quick test_unpermitted_device_stays_off;
        ] );
      ( "control",
        [
          Alcotest.test_case "permit via API" `Quick test_control_api_permit_end_to_end;
          Alcotest.test_case "deny via API" `Quick test_control_api_deny_revokes_and_blocks;
          Alcotest.test_case "status endpoint" `Quick test_status_endpoint;
          Alcotest.test_case "determinism per seed" `Quick test_determinism_per_seed;
          Alcotest.test_case "device isolation" `Quick test_device_isolation;
        ] );
      ( "dns",
        [
          Alcotest.test_case "policy blocks lookup" `Quick test_dns_policy_blocks_lookup;
          Alcotest.test_case "flow admission blocks traffic" `Quick
            test_upstream_flow_admission_blocks_traffic;
        ] );
      ( "policy", [ Alcotest.test_case "usb key cycle" `Quick test_policy_usb_cycle ] );
      ( "interfaces",
        [
          Alcotest.test_case "bandwidth view" `Quick test_bandwidth_view_reflects_traffic;
          Alcotest.test_case "control ui drag" `Quick test_control_ui_drag_cycle;
          Alcotest.test_case "artifact events" `Quick test_artifact_fed_from_router_events;
          Alcotest.test_case "artifact driver via hwdb" `Quick
            test_artifact_driver_from_measurement_plane;
          Alcotest.test_case "rpc" `Quick test_rpc_through_router;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "flows idle out" `Quick test_flows_idle_out;
          Alcotest.test_case "nat mode" `Quick test_nat_mode;
          Alcotest.test_case "one-hour soak" `Slow test_soak_one_hour_bounded_state;
        ] );
    ]
