(* hw_metrics: instruments, registry, exports, and the end-to-end path
   from instrumented subsystems through the hwdb Metrics table and the
   RPC subscription plane. *)

open Hw_metrics
module Database = Hw_hwdb.Database
module Value = Hw_hwdb.Value
module Rpc = Hw_hwdb.Rpc
module Query = Hw_hwdb.Query
module Home = Hw_router.Home
module Router = Hw_router.Router
module Http = Hw_control_api.Http

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)
(* ------------------------------------------------------------------ *)

let test_counter () =
  let c = Counter.create ~name:"c" ~help:"" in
  Alcotest.(check int) "starts at zero" 0 (Counter.value c);
  Counter.incr c;
  Counter.incr c;
  Counter.add c 40;
  Alcotest.(check int) "incr and add accumulate" 42 (Counter.value c);
  (try
     Counter.add c (-1);
     Alcotest.fail "negative add accepted"
   with Invalid_argument _ -> ());
  Alcotest.(check int) "failed add leaves value untouched" 42 (Counter.value c)

let test_gauge () =
  let g = Gauge.create ~name:"g" ~help:"" () in
  Gauge.set g 7.5;
  Gauge.add g (-2.5);
  Alcotest.(check (float 1e-9)) "set then add" 5.0 (Gauge.value g)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_get_or_create () =
  let r = Registry.create () in
  let a = Registry.counter r "requests_total" ~help:"first registration" in
  let b = Registry.counter r "requests_total" ~help:"ignored on the get path" in
  Alcotest.(check bool) "same instrument both times" true (a == b);
  Counter.incr a;
  Alcotest.(check int) "shared state" 1 (Counter.value b);
  Alcotest.(check string) "first help wins" "first registration" (Counter.help b);
  Alcotest.(check int) "one registration" 1 (Registry.size r)

let test_registry_kind_mismatch () =
  let r = Registry.create () in
  let _ = Registry.counter r "dispatch" in
  Alcotest.check_raises "counter name reused as histogram"
    (Registry.Kind_mismatch "dispatch") (fun () -> ignore (Registry.histogram r "dispatch"));
  Alcotest.check_raises "counter name reused as gauge" (Registry.Kind_mismatch "dispatch")
    (fun () -> ignore (Registry.gauge r "dispatch"))

let test_registry_names () =
  let r = Registry.create () in
  Alcotest.(check bool) "underscore-led name valid" true (Registry.valid_name "_up");
  Alcotest.(check bool) "hyphen invalid" false (Registry.valid_name "dhcp-grants");
  Alcotest.(check bool) "leading digit invalid" false (Registry.valid_name "9lives");
  Alcotest.(check bool) "empty invalid" false (Registry.valid_name "");
  Alcotest.(check string) "sanitize maps bad chars" "dhcp_grants_2"
    (Registry.sanitize_name "dhcp-grants 2");
  (try
     ignore (Registry.counter r "not a name");
     Alcotest.fail "malformed name accepted"
   with Invalid_argument _ -> ());
  let _ = Registry.counter r "a" in
  let _ = Registry.gauge r "b" in
  match Registry.instruments r with
  | [ ("a", Registry.Counter _); ("b", Registry.Gauge _) ] -> ()
  | l -> Alcotest.fail (Printf.sprintf "unexpected instrument list (%d entries)" (List.length l))

(* ------------------------------------------------------------------ *)
(* Histogram bucket geometry                                           *)
(* ------------------------------------------------------------------ *)

let test_histogram_buckets () =
  (* bucket i covers [2^(lo+i-1), 2^(lo+i)); upper edges are exclusive,
     so an exact power of two belongs to the bucket above its edge *)
  Alcotest.(check (float 0.)) "0.99 s rounds up to the 1 s edge" 1.0
    (Histogram.bucket_upper (Histogram.bucket_index 0.99));
  Alcotest.(check (float 0.)) "1.0 s is past the 1 s edge" 2.0
    (Histogram.bucket_upper (Histogram.bucket_index 1.0));
  Alcotest.(check (float 0.)) "1.5 us lands under the 2 us edge"
    (Float.ldexp 1. (-19))
    (Histogram.bucket_upper (Histogram.bucket_index 1.5e-6));
  (* in-range positives: the reported edge is in (v, 2v] *)
  List.iter
    (fun v ->
      let upper = Histogram.bucket_upper (Histogram.bucket_index v) in
      Alcotest.(check bool)
        (Printf.sprintf "edge above %g" v)
        true
        (upper > v && upper <= 2. *. v))
    [ 1e-8; 3.14e-5; 0.25; 0.7; 1.0; 100.; 500. ];
  (* everything unrepresentable collapses into the underflow bucket *)
  List.iter
    (fun v -> Alcotest.(check int) "underflow bucket" 0 (Histogram.bucket_index v))
    [ 0.; -1.; Float.nan; Float.neg_infinity; Float.ldexp 1. (-40) ];
  (* and the far end clamps to the overflow bucket *)
  Alcotest.(check int) "overflow bucket" (Histogram.n_buckets - 1)
    (Histogram.bucket_index 1e12)

let test_histogram_observe () =
  let h = Histogram.create ~name:"h" ~help:"" in
  Histogram.observe h 0.5;
  Histogram.observe h 0.5;
  Histogram.observe h 3.0;
  Histogram.observe h (-1.0);
  Alcotest.(check int) "count includes junk values" 4 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum excludes junk values" 4.0 (Histogram.sum h);
  Alcotest.(check (float 0.)) "max tracked" 3.0 (Histogram.max_value h);
  Alcotest.(check int) "two in the 0.5 bucket" 2
    (Histogram.bucket_count h (Histogram.bucket_index 0.5));
  Alcotest.(check int) "one in the junk bucket" 1 (Histogram.bucket_count h 0)

let test_observe_span () =
  let h = Histogram.create ~name:"h" ~help:"" in
  let t = ref 10.0 in
  let now () = !t in
  let r =
    Histogram.observe_span h ~now (fun () ->
        t := !t +. 0.25;
        "done")
  in
  Alcotest.(check string) "span returns f's result" "done" r;
  Alcotest.(check int) "one observation" 1 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "elapsed span recorded" 0.25 (Histogram.sum h);
  (try
     ignore
       (Histogram.observe_span h ~now (fun () ->
            t := !t +. 1.;
            failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check int) "raising f records nothing" 1 (Histogram.count h)

(* ------------------------------------------------------------------ *)
(* Percentiles vs a naive sorted-array reference                       *)
(* ------------------------------------------------------------------ *)

(* Both the histogram walk and the naive reference use rank
   [max 1 (ceil (p/100 * n))]. bucket_index is monotone, so the bucket
   that first accumulates [rank] observations is exactly the bucket of
   the rank-th smallest value: the histogram answer must equal that
   bucket's upper edge (or the true max, from the overflow bucket). *)
let prop_percentile_matches_naive =
  QCheck.Test.make ~name:"percentile equals bucket edge of naive rank" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 100) (int_range 1 2_000_000)) (int_range 1 100))
    (fun (micros, p) ->
      QCheck.assume (micros <> []);
      let values = List.map (fun us -> float_of_int us *. 1e-6) micros in
      let h = Histogram.create ~name:"h" ~help:"" in
      List.iter (Histogram.observe h) values;
      let sorted = Array.of_list values in
      Array.sort compare sorted;
      let n = Array.length sorted in
      let p = float_of_int p in
      let rank = max 1 (int_of_float (Float.ceil (p *. float_of_int n /. 100.))) in
      let v_naive = sorted.(rank - 1) in
      let i = Histogram.bucket_index v_naive in
      let expected =
        if i = Histogram.n_buckets - 1 then Histogram.max_value h else Histogram.bucket_upper i
      in
      let got = Histogram.percentile h p in
      got = expected
      (* and the estimate brackets the true value to one bucket width *)
      && got >= v_naive
      && got <= 2. *. v_naive)

(* ------------------------------------------------------------------ *)
(* Sampling                                                            *)
(* ------------------------------------------------------------------ *)

let test_sampled () =
  let h = Histogram.create ~name:"h" ~help:"" in
  let s = Sampled.create ~every:4 h in
  let clock_reads = ref 0 in
  let t = ref 0. in
  let now () =
    incr clock_reads;
    !t
  in
  for _ = 1 to 8 do
    Sampled.observe_span s ~now (fun () -> t := !t +. 0.001)
  done;
  Alcotest.(check int) "1-in-4 of 8 calls recorded" 2 (Histogram.count h);
  Alcotest.(check int) "clock touched only on sampled calls" 4 !clock_reads;
  (try
     ignore (Sampled.create ~every:0 h);
     Alcotest.fail "every:0 accepted"
   with Invalid_argument _ -> ());
  let all = Sampled.create ~every:1 h in
  Sampled.observe all 0.5;
  Alcotest.(check int) "every:1 records all" 3 (Histogram.count h)

(* ------------------------------------------------------------------ *)
(* Snapshot exports                                                    *)
(* ------------------------------------------------------------------ *)

let test_snapshot () =
  let r = Registry.create () in
  let c = Registry.counter r "events_total" ~help:"events" in
  Counter.add c 5;
  Gauge.set (Registry.gauge r "depth") 2.0;
  let h = Registry.histogram r "lat_seconds" in
  Histogram.observe h 0.5;
  let rows = Snapshot.rows r in
  let find metric stat =
    match
      List.find_opt (fun (x : Snapshot.row) -> x.metric = metric && x.stat = stat) rows
    with
    | Some x -> x.value
    | None -> Alcotest.fail (Printf.sprintf "missing row %s/%s" metric stat)
  in
  Alcotest.(check (float 0.)) "counter row" 5.0 (find "events_total" "value");
  Alcotest.(check (float 0.)) "gauge row" 2.0 (find "depth" "value");
  Alcotest.(check (float 0.)) "histogram count row" 1.0 (find "lat_seconds" "count");
  Alcotest.(check (float 0.)) "histogram p50 row" 1.0 (find "lat_seconds" "p50");
  let text = Snapshot.render_prometheus r in
  List.iter
    (fun needle ->
      let re = Re.compile (Re.str needle) in
      Alcotest.(check bool) (Printf.sprintf "exposition contains %S" needle) true
        (Re.execp re text))
    [
      "# TYPE events_total counter";
      "events_total 5";
      "# TYPE depth gauge";
      "# TYPE lat_seconds summary";
      "lat_seconds{quantile=\"0.99\"}";
      "lat_seconds_count 1";
    ];
  match Snapshot.to_json r with
  | Hw_json.Json.Obj fields ->
      Alcotest.(check bool) "json has all metrics" true
        (List.mem_assoc "events_total" fields
        && List.mem_assoc "depth" fields
        && List.mem_assoc "lat_seconds" fields)
  | _ -> Alcotest.fail "to_json should produce an object"

let test_build_info () =
  let r = Registry.create () in
  let uptime = Build_info.register ~registry:r () in
  Gauge.set uptime 12.5;
  let text = Snapshot.render_prometheus r in
  let has needle = Re.execp (Re.compile (Re.str needle)) text in
  Alcotest.(check bool) "info-pattern gauge rendered with label" true
    (has (Printf.sprintf "homework_build_info{version=%S} 1" Build_info.version));
  Alcotest.(check bool) "uptime rendered" true (has "homework_uptime_seconds 12.5");
  (* idempotent: a second registration returns the same gauge *)
  let again = Build_info.register ~registry:r () in
  Gauge.add again 1.;
  Alcotest.(check (float 1e-9)) "same uptime gauge" 13.5 (Gauge.value uptime)

(* ------------------------------------------------------------------ *)
(* hwdb Metrics table                                                  *)
(* ------------------------------------------------------------------ *)

let metrics_value rs ~metric ~stat =
  (* rows of (name, kind, stat, value [, ts]) from SELECT on Metrics *)
  let cols = rs.Query.columns in
  let col c row =
    match List.assoc_opt c (List.combine cols row) with
    | Some v -> v
    | None -> Alcotest.fail (Printf.sprintf "no %s column" c)
  in
  List.find_map
    (fun row ->
      match (col "name" row, col "stat" row, col "value" row) with
      | Value.Str n, Value.Str s, Value.Real v when n = metric && s = stat -> Some v
      | _ -> None)
    rs.Query.rows

let test_metrics_table () =
  let t = ref 0. in
  let db = Database.create ~metrics:(Registry.create ()) ~now:(fun () -> !t) () in
  Database.record_lease db ~mac:"aa:bb:cc:dd:ee:01" ~ip:"10.0.0.2" ~hostname:"h" ~action:"grant";
  Database.record_lease db ~mac:"aa:bb:cc:dd:ee:02" ~ip:"10.0.0.3" ~hostname:"h" ~action:"grant";
  (match Database.query db "SELECT * FROM Metrics [NOW]" with
  | Ok rs -> Alcotest.(check int) "no export before the first tick" 0 (List.length rs.Query.rows)
  | Error e -> Alcotest.fail e);
  t := 1.;
  Database.tick db;
  let rs =
    match Database.query db "SELECT name, kind, stat, value FROM Metrics [NOW]" with
    | Ok rs -> rs
    | Error e -> Alcotest.fail e
  in
  (match metrics_value rs ~metric:"hwdb_inserts_total" ~stat:"value" with
  | Some v -> Alcotest.(check bool) "insert counter exported and nonzero" true (v >= 2.)
  | None -> Alcotest.fail "hwdb_inserts_total not exported");
  (* the refresh replaces the batch each tick rather than double-counting *)
  t := 2.;
  Database.tick db;
  let rs2 =
    match Database.query db "SELECT name, stat, value FROM Metrics [NOW]" with
    | Ok rs -> rs
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "[NOW] returns exactly one batch" (List.length rs.Query.rows)
    (List.length rs2.Query.rows);
  match metrics_value rs2 ~metric:"hwdb_ticks_total" ~stat:"value" with
  | Some v -> Alcotest.(check (float 0.)) "tick counter advanced" 2.0 v
  | None -> Alcotest.fail "hwdb_ticks_total not exported"

(* ------------------------------------------------------------------ *)
(* End to end: a running home exports live counters on every surface   *)
(* ------------------------------------------------------------------ *)

let test_home_metrics_end_to_end () =
  let home = Home.standard_home ~seed:11 () in
  let r = Home.router home in
  (* hook the hwdb RPC plane up to a client before traffic starts *)
  let from_router = Queue.create () in
  Router.set_rpc_send r (fun ~to_:_ data -> Queue.add data from_router);
  let client = Rpc.Client.create ~send:(fun d -> Router.rpc_datagram r ~from:"ui:9000" d) () in
  let published = ref [] in
  Rpc.Client.on_publish client (fun ~subscription:_ rs -> published := rs :: !published);
  let pump () =
    while not (Queue.is_empty from_router) do
      Rpc.Client.handle_datagram client (Queue.pop from_router)
    done
  in
  let sub_ok = ref false in
  Rpc.Client.request client "SUBSCRIBE SELECT name, kind, stat, value FROM Metrics [NOW] EVERY 2 SECONDS"
    ~on_reply:(fun reply -> sub_ok := Result.is_ok reply);
  pump ();
  Alcotest.(check bool) "subscription accepted" true !sub_ok;
  Home.run_for home 30.;
  pump ();
  (* 1. the RPC subscription published a Metrics snapshot with live counts *)
  Alcotest.(check bool) "publications arrived" true (!published <> []);
  let latest = List.hd !published in
  let nonzero metric =
    match metrics_value latest ~metric ~stat:"value" with
    | Some v -> Alcotest.(check bool) (metric ^ " > 0") true (v > 0.)
    | None -> Alcotest.fail (metric ^ " missing from published snapshot")
  in
  nonzero "ctrl_packet_in_total";
  nonzero "hwdb_inserts_total";
  nonzero "rpc_datagrams_in_total";
  nonzero "rpc_datagrams_out_total";
  nonzero "dp_flow_lookups_total";
  nonzero "dhcp_grants_total";
  (* 2. the same data answers a plain query through the database *)
  (match Database.query (Router.db r) "SELECT name, stat, value FROM Metrics [NOW]" with
  | Ok rs -> (
      match metrics_value rs ~metric:"ctrl_packet_in_total" ~stat:"value" with
      | Some v -> Alcotest.(check bool) "SELECT sees dispatch counts" true (v > 0.)
      | None -> Alcotest.fail "ctrl_packet_in_total missing from Metrics table")
  | Error e -> Alcotest.fail e);
  (* 3. and the Prometheus endpoint renders it as text *)
  let resp = Router.http r (Http.request Http.GET "/metrics") in
  Alcotest.(check int) "GET /metrics ok" 200 resp.Http.status;
  Alcotest.(check (option string)) "prometheus content type"
    (Some "text/plain; version=0.0.4")
    (List.assoc_opt "content-type" resp.Http.headers);
  let body = resp.Http.body in
  Alcotest.(check bool) "exposition ends with a newline" true
    (String.length body > 0 && body.[String.length body - 1] = '\n');
  let has needle = Re.execp (Re.compile (Re.str needle)) body in
  Alcotest.(check bool) "controller counter exposed" true (has "ctrl_packet_in_total");
  Alcotest.(check bool) "handler latency summary exposed" true
    (has "quantile=\"0.5\"");
  (* the scrape is self-identifying (satellite: build_info + uptime) *)
  Alcotest.(check bool) "build info gauge with version label" true
    (has (Printf.sprintf "homework_build_info{version=%S} 1" Build_info.version));
  Alcotest.(check bool) "uptime gauge exposed" true (has "homework_uptime_seconds");
  let zero_packet_in = has "\nctrl_packet_in_total 0\n" in
  Alcotest.(check bool) "controller dispatch count is nonzero" false zero_packet_in;
  let zero_uptime = has "\nhomework_uptime_seconds 0\n" in
  Alcotest.(check bool) "uptime advanced with the loop" false zero_uptime

(* ------------------------------------------------------------------ *)
(* Prometheus label escaping and the cardinality guard                 *)
(* ------------------------------------------------------------------ *)

(* the inverse of the exposition-format escape: exactly backslash,
   double-quote and newline *)
let unescape_label_value s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | '\\' -> Buffer.add_char b '\\'
       | '"' -> Buffer.add_char b '"'
       | 'n' -> Buffer.add_char b '\n'
       | c ->
           Buffer.add_char b '\\';
           Buffer.add_char b c);
       incr i
     end
     else Buffer.add_char b s.[!i]);
    incr i
  done;
  Buffer.contents b

let test_label_escaping_round_trip () =
  let hostile =
    [
      "plain";
      "back\\slash";
      "quo\"te";
      "new\nline";
      "all\\three\"at\nonce";
      "trailing\\";
      "\"";
      "\\n is two chars";
    ]
  in
  List.iter
    (fun v ->
      let e = Snapshot.escape_label_value v in
      Alcotest.(check string)
        (Printf.sprintf "round-trips %S" v)
        v (unescape_label_value e);
      Alcotest.(check bool) "no raw newline survives" false (String.contains e '\n'))
    hostile;
  (* the untouched fast path returns the very same string *)
  let v = "no_specials_here" in
  Alcotest.(check bool) "fast path does not copy" true (Snapshot.escape_label_value v == v);
  (* and the rendered exposition carries the escaped form *)
  let r = Registry.create () in
  let c = Registry.labeled_counter r "hostile_total" ~labels:[ ("who", "a\\b\"c\nd") ] in
  Counter.incr c;
  let text = Snapshot.render_prometheus r in
  let has needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "escaped label in exposition" true
    (has "hostile_total{who=\"a\\\\b\\\"c\\nd\"} 1" text)

let test_cardinality_guard () =
  let r = Registry.create ~max_label_series:2 () in
  let c0 = Registry.labeled_counter r "req_total" ~labels:[ ("peer", "p0") ] in
  let c1 = Registry.labeled_counter r "req_total" ~labels:[ ("peer", "p1") ] in
  Counter.incr c0;
  Counter.incr c1;
  (* pre-cap combinations keep resolving to their own series *)
  Counter.incr (Registry.labeled_counter r "req_total" ~labels:[ ("peer", "p0") ]);
  Alcotest.(check int) "existing series untouched" 2 (Counter.value c0);
  (* a third combination collapses into __overflow__ *)
  let o1 = Registry.labeled_counter r "req_total" ~labels:[ ("peer", "p2") ] in
  let o2 = Registry.labeled_counter r "req_total" ~labels:[ ("peer", "p3") ] in
  Counter.incr o1;
  Counter.incr o2;
  Alcotest.(check bool) "overflow series shared" true (o1 == o2);
  Alcotest.(check int) "overflow accumulates" 2 (Counter.value o1);
  let spill =
    Counter.value (Registry.counter r "metrics_cardinality_overflow_total" ~help:"")
  in
  Alcotest.(check int) "redirections counted" 2 spill;
  (* separate families guard independently *)
  Counter.incr (Registry.labeled_counter r "other_total" ~labels:[ ("peer", "p9") ]);
  Alcotest.(check int) "fresh family not penalised" 2
    (Counter.value (Registry.counter r "metrics_cardinality_overflow_total" ~help:""));
  let text = Snapshot.render_prometheus r in
  let has needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "overflow series rendered" true
    (has "req_total{peer=\"__overflow__\"} 2" text);
  Alcotest.(check bool) "real series rendered" true (has "req_total{peer=\"p0\"} 2" text)

let () =
  Alcotest.run "hw_metrics"
    [
      ( "instruments",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram observe" `Quick test_histogram_observe;
          Alcotest.test_case "observe_span" `Quick test_observe_span;
          Alcotest.test_case "sampled" `Quick test_sampled;
          QCheck_alcotest.to_alcotest prop_percentile_matches_naive;
        ] );
      ( "registry",
        [
          Alcotest.test_case "get or create" `Quick test_registry_get_or_create;
          Alcotest.test_case "kind mismatch" `Quick test_registry_kind_mismatch;
          Alcotest.test_case "name grammar" `Quick test_registry_names;
          Alcotest.test_case "snapshot exports" `Quick test_snapshot;
          Alcotest.test_case "build info" `Quick test_build_info;
          Alcotest.test_case "label escaping round-trip" `Quick
            test_label_escaping_round_trip;
          Alcotest.test_case "cardinality guard" `Quick test_cardinality_guard;
        ] );
      ( "export",
        [
          Alcotest.test_case "hwdb Metrics table" `Quick test_metrics_table;
          Alcotest.test_case "home end to end" `Quick test_home_metrics_end_to_end;
        ] );
    ]
