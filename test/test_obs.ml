(* The fleet observability plane: bounded downsampled series, the
   router health state machine, and the end-to-end cross-node tracing +
   scrape + alerting loop over Fleet_sim.

   The e2e tests mirror the acceptance bar: one Manager.query over a
   100+ router fleet yields ONE causal trace whose per-router child
   spans (with router-id attrs) are visible on every export surface —
   the manager's flight recorder, the observer's Traces table, and the
   HTTP Chrome-JSON endpoint — while series memory stays bounded. *)

module Fault = Hw_fault.Fault
module Router = Hw_router.Router
module Manager = Hw_fleet.Manager
module Agent = Hw_fleet.Agent
module Fleet_sim = Hw_fleet.Fleet_sim
module Series = Hw_obs.Series
module Health = Hw_obs.Health
module Observer = Hw_obs.Observer
module Tracer = Hw_trace.Tracer
module Database = Hw_hwdb.Database
module Value = Hw_hwdb.Value
module Query = Hw_hwdb.Query
module Http = Hw_control_api.Http

let await_registered fleet ~within =
  let mgr = Fleet_sim.manager fleet in
  let n = Fleet_sim.size fleet in
  let deadline = Fleet_sim.now fleet +. within in
  let rec step () =
    if Manager.session_count mgr < n && Fleet_sim.now fleet < deadline then begin
      Fleet_sim.run_for fleet 0.25;
      step ()
    end
  in
  step ()

let int_of_count = function
  | Some { Query.rows = [ [ Value.Int n ] ]; _ } -> n
  | _ -> Alcotest.fail "expected one COUNT row"

(* -- series --------------------------------------------------------- *)

let test_series_downsampling () =
  let s = Series.create ~raw_capacity:8 ~s10_capacity:4 ~s60_capacity:4 () in
  for i = 0 to 499 do
    Series.push s ~ts:(float_of_int i) (float_of_int i)
  done;
  Alcotest.(check int) "samples counted" 500 (Series.samples s);
  (* occupancy never exceeds capacity, whatever was pushed *)
  List.iter
    (fun tier ->
      let len, cap = Series.occupancy s tier in
      Alcotest.(check bool) "bounded" true (len <= cap))
    [ `Raw; `S10; `S60 ];
  Alcotest.(check (pair int int)) "raw ring full" (8, 8) (Series.occupancy s `Raw);
  Alcotest.(check (pair int int)) "10s ring full" (4, 4) (Series.occupancy s `S10);
  Alcotest.(check (pair int int)) "60s ring full" (4, 4) (Series.occupancy s `S60);
  Alcotest.(check (float 0.)) "last" 499. (Series.last s);
  (* sealed 10s buckets hold the last sample of their window *)
  (match List.rev (Series.points s `S10) with
  | (open_ts, open_v) :: (ts, v) :: _ ->
      Alcotest.(check (float 0.)) "open bucket start" 490. open_ts;
      Alcotest.(check (float 0.)) "open bucket last" 499. open_v;
      Alcotest.(check (float 0.)) "sealed bucket start" 480. ts;
      Alcotest.(check (float 0.)) "sealed bucket last = last of window" 489. v
  | _ -> Alcotest.fail "expected 10s points");
  (match List.rev (Series.points s `S60) with
  | (open_ts, _) :: (ts, v) :: _ ->
      Alcotest.(check (float 0.)) "open 60s bucket" 480. open_ts;
      Alcotest.(check (float 0.)) "sealed 60s bucket" 420. ts;
      Alcotest.(check (float 0.)) "sealed 60s last" 479. v
  | _ -> Alcotest.fail "expected 60s points");
  (* fixed footprint: 3 arrays per tier *)
  Alcotest.(check int) "footprint" (3 * (8 + 4 + 4)) (Series.footprint_floats s)

let test_series_max_preserves_spikes () =
  let s = Series.create ~s10_capacity:4 () in
  (* a gauge that spikes mid-bucket: last-write erases it, max keeps it *)
  Series.push s ~ts:1. 1.;
  Series.push s ~ts:4. 100.;
  Series.push s ~ts:9. 2.;
  Series.push s ~ts:11. 3. (* seals [0,10) *);
  (match Series.points s `S10 with
  | (0., v) :: _ -> Alcotest.(check (float 0.)) "last-downsample" 2. v
  | _ -> Alcotest.fail "expected sealed bucket");
  match Series.max_points s `S10 with
  | (0., v) :: _ -> Alcotest.(check (float 0.)) "max-downsample" 100. v
  | _ -> Alcotest.fail "expected sealed bucket"

(* -- health machine ------------------------------------------------- *)

let states h router = Option.map Health.state_to_string (Health.state h router)

let test_health_machine () =
  let h = Health.create ~degraded_after:10. ~lost_after_failures:3 ~recover_after:2 () in
  (* birth is Healthy with no transition row *)
  Alcotest.(check (list string)) "up: no transition" []
    (List.map (fun (t : Health.transition) -> t.reason) (Health.note_up h ~router:"r1" ~now:0.));
  Alcotest.(check (option string)) "healthy" (Some "healthy") (states h "r1");
  (* scrape failures: degraded at 1, lost at 3 *)
  let t1 = Health.note_scrape h ~router:"r1" ~now:1. ~ok:false ~errors:0 ~reason:"timeout" in
  Alcotest.(check int) "one transition" 1 (List.length t1);
  Alcotest.(check (option string)) "degraded" (Some "degraded") (states h "r1");
  ignore (Health.note_scrape h ~router:"r1" ~now:2. ~ok:false ~errors:0 ~reason:"timeout");
  let t3 = Health.note_scrape h ~router:"r1" ~now:3. ~ok:false ~errors:0 ~reason:"timeout" in
  Alcotest.(check (option string)) "lost" (Some "lost") (states h "r1");
  (match t3 with
  | [ tr ] ->
      Alcotest.(check string) "lost reason" "3 consecutive scrape failures" tr.reason;
      Alcotest.(check string) "prev" "degraded" (Health.state_to_string tr.prev)
  | _ -> Alcotest.fail "expected lost transition");
  (* recovery needs recover_after clean scrapes *)
  ignore (Health.note_scrape h ~router:"r1" ~now:4. ~ok:true ~errors:0 ~reason:"");
  Alcotest.(check (option string)) "still lost" (Some "lost") (states h "r1");
  ignore (Health.note_scrape h ~router:"r1" ~now:5. ~ok:true ~errors:0 ~reason:"");
  Alcotest.(check (option string)) "recovered" (Some "healthy") (states h "r1");
  (* error-counter advance degrades a healthy router *)
  (match Health.note_scrape h ~router:"r1" ~now:6. ~ok:true ~errors:7 ~reason:"" with
  | [ tr ] ->
      Alcotest.(check string) "error reason" "error counters advanced (+7)" tr.reason
  | _ -> Alcotest.fail "expected degraded transition");
  (* renewal recovers silence, not scrape failures *)
  Alcotest.(check (list string)) "renewal does not clear errors" []
    (List.map
       (fun (t : Health.transition) -> t.reason)
       (Health.note_renewed h ~router:"r1" ~now:7.));
  ignore (Health.note_scrape h ~router:"r1" ~now:8. ~ok:true ~errors:0 ~reason:"");
  ignore (Health.note_scrape h ~router:"r1" ~now:9. ~ok:true ~errors:0 ~reason:"");
  Alcotest.(check (option string)) "healthy again" (Some "healthy") (states h "r1");
  (* silence sweep *)
  Alcotest.(check int) "tick under threshold" 0 (List.length (Health.tick h ~now:15.));
  (match Health.tick h ~now:25. with
  | [ tr ] -> Alcotest.(check string) "silence" "renewal silence" tr.reason
  | _ -> Alcotest.fail "expected silence transition");
  (* renewal clears pure silence *)
  (match Health.note_renewed h ~router:"r1" ~now:26. with
  | [ tr ] -> Alcotest.(check string) "renewed" "lease renewed" tr.reason
  | _ -> Alcotest.fail "expected recovery");
  (* eviction is Lost *)
  (match Health.note_down h ~router:"r1" ~now:30. ~reason:"lease lapsed" with
  | [ tr ] ->
      Alcotest.(check string) "down state" "lost" (Health.state_to_string tr.state)
  | _ -> Alcotest.fail "expected lost transition");
  (* a late scrape failure (in flight across the eviction) must not
     promote a lost router back to merely-degraded *)
  Alcotest.(check int) "late failure on lost: no transition" 0
    (List.length (Health.note_scrape h ~router:"r1" ~now:31. ~ok:false ~errors:0 ~reason:"timeout"));
  Alcotest.(check (option string)) "still lost after late failure" (Some "lost")
    (states h "r1");
  Alcotest.(check (pair int (pair int int))) "counts" (0, (0, 1))
    (let h', (d, l) = (fun (a, b, c) -> (a, (b, c))) (Health.counts h) in
     (h', (d, l)))

(* -- e2e: one cross-node trace on every export surface -------------- *)

let test_e2e_trace_all_surfaces () =
  let n = 120 in
  let fleet = Fleet_sim.create ~n ~trace_capacity:8 ~max_inflight:256 () in
  let mgr = Fleet_sim.manager fleet in
  await_registered fleet ~within:30.;
  Alcotest.(check int) "all registered" n (Manager.session_count mgr);
  let obs =
    Observer.create ~scrape_period:5. ~loop:(Fleet_sim.loop fleet) ~manager:mgr ()
  in
  (* a federated query is one causal trace *)
  let o =
    match Fleet_sim.query_sync fleet "SELECT name, stat, value FROM Metrics [NOW]" with
    | Some o -> o
    | None -> Alcotest.fail "federated query did not settle"
  in
  Alcotest.(check int) "every router answered" n o.Manager.ok;
  Alcotest.(check bool) "outcome carries trace id" true (o.Manager.trace > 0);

  (* surface 1: the manager's flight recorder *)
  let c =
    match Tracer.find (Manager.tracer mgr) o.Manager.trace with
    | Some c -> c
    | None -> Alcotest.fail "trace not in flight recorder"
  in
  let rpc_spans =
    Array.to_list c.Tracer.spans
    |> List.filter (fun (s : Tracer.span) -> s.name = "fleet.rpc")
  in
  Alcotest.(check int) "one child span per router" n (List.length rpc_spans);
  let router_attrs =
    List.filter_map
      (fun (s : Tracer.span) ->
        match List.assoc_opt "router" s.attrs with
        | Some (Tracer.Str id) -> Some id
        | _ -> None)
      rpc_spans
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "router-id attrs on every child" n (List.length router_attrs);
  Alcotest.(check bool) "attempts attr settled" true
    (List.for_all
       (fun (s : Tracer.span) -> List.mem_assoc "attempts" s.attrs)
       rpc_spans);
  Alcotest.(check string) "root is fleet.query" "fleet.query"
    c.Tracer.spans.(0).Tracer.name;
  Alcotest.(check bool) "merge span present" true
    (Array.exists (fun (s : Tracer.span) -> s.Tracer.name = "fleet.merge") c.Tracer.spans);

  (* the routers rooted their handler under the SAME trace id *)
  (match Fleet_sim.agent fleet "r0000" with
  | None -> Alcotest.fail "no agent r0000"
  | Some agent -> (
      match Tracer.find (Router.tracer (Agent.router agent)) o.Manager.trace with
      | None -> Alcotest.fail "router-side trace missing (remote rooting failed)"
      | Some rc ->
          let root = rc.Tracer.spans.(0) in
          Alcotest.(check string) "router root" "rpc.request" root.Tracer.name;
          Alcotest.(check bool) "rooted under a manager span" true
            (root.Tracer.parent > 0)));

  (* surface 2: the observer's Traces table (after a scrape exports it) *)
  Fleet_sim.run_for fleet 6.;
  Alcotest.(check bool) "a scrape completed" true (Observer.scrapes_total obs >= 1);
  let span_count =
    match
      Database.query (Observer.db obs)
        (Printf.sprintf
           "SELECT COUNT(span_id) AS n FROM Traces WHERE trace_id = %d" o.Manager.trace)
    with
    | Ok rs -> int_of_count (Some rs)
    | Error e -> Alcotest.failf "Traces query: %s" e
  in
  Alcotest.(check bool)
    (Printf.sprintf "Traces table holds the full tree (%d spans)" span_count)
    true
    (span_count >= n + 2);

  (* surface 3: HTTP Chrome JSON *)
  let raw =
    Http.encode_request (Http.request Http.GET (Printf.sprintf "/traces/%d" o.Manager.trace))
  in
  let resp =
    match Http.decode_response (Observer.handle_http obs raw) with
    | Ok r -> r
    | Error e -> Alcotest.failf "http decode: %s" e
  in
  Alcotest.(check int) "200" 200 resp.Http.status;
  Alcotest.(check bool) "chrome json has per-router spans" true
    (let contains needle hay =
       let nl = String.length needle and hl = String.length hay in
       let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
       go 0
     in
     contains "fleet.rpc" resp.Http.body && contains "r0057" resp.Http.body);

  (* bounded series memory: every ring within capacity, footprint capped *)
  let checked = ref 0 in
  Array.iter
    (fun agent ->
      let id = Agent.id agent in
      match Observer.series obs ~router:id "hwdb_inserts_total" with
      | None -> ()
      | Some s ->
          incr checked;
          List.iter
            (fun tier ->
              let len, cap = Series.occupancy s tier in
              if len > cap then Alcotest.failf "ring overflow for %s" id)
            [ `Raw; `S10; `S60 ])
    (Fleet_sim.agents fleet);
  Alcotest.(check bool) "series exist for most routers" true (!checked >= n / 2);
  let max_floats = Observer.series_count obs * 3 * (32 + 32 + 32) in
  Alcotest.(check bool) "footprint bounded" true
    (Observer.series_footprint_floats obs <= max_floats)

(* -- satellite: cross-node tracing under fault injection ------------ *)

let test_trace_under_faults () =
  let n = 30 in
  let fleet = Fleet_sim.create ~n ~trace_capacity:8 () in
  let mgr = Fleet_sim.manager fleet in
  await_registered fleet ~within:30.;
  Alcotest.(check int) "all registered" n (Manager.session_count mgr);
  (* 2 dead routers, 30% drop everywhere else *)
  let dead = [ "r0003"; "r0017" ] in
  Array.iter
    (fun agent ->
      let inj = (Router.faults (Agent.router agent)).Fault.rpc in
      if List.mem (Agent.id agent) dead then Fault.set_plan inj [ Fault.Drop 1.0 ]
      else Fault.set_plan inj [ Fault.Drop 0.3 ])
    (Fleet_sim.agents fleet);
  let o =
    match Fleet_sim.query_sync fleet "SELECT COUNT(ts) AS n FROM Leases" with
    | Some o -> o
    | None -> Alcotest.fail "federated query did not settle"
  in
  Alcotest.(check int) "survivors answered" (n - 2) o.Manager.ok;
  Alcotest.(check (list string)) "dead routers errored" dead
    (List.map fst o.Manager.errors |> List.sort compare);
  (* ONE trace holds the whole story *)
  let c =
    match Tracer.find (Manager.tracer mgr) o.Manager.trace with
    | Some c -> c
    | None -> Alcotest.fail "trace not recorded"
  in
  Alcotest.(check bool) "trace marked errored" true c.Tracer.errored;
  let rpc_spans =
    Array.to_list c.Tracer.spans
    |> List.filter (fun (s : Tracer.span) -> s.Tracer.name = "fleet.rpc")
  in
  Alcotest.(check int) "every router has a child span" n (List.length rpc_spans);
  let errored, clean =
    List.partition (fun (s : Tracer.span) -> s.Tracer.error <> None) rpc_spans
  in
  let errored_ids =
    List.filter_map
      (fun (s : Tracer.span) ->
        match List.assoc_opt "router" s.Tracer.attrs with
        | Some (Tracer.Str id) -> Some id
        | _ -> None)
      errored
    |> List.sort compare
  in
  Alcotest.(check (list string)) "timed-out children error-marked" dead errored_ids;
  Alcotest.(check int) "surviving children completed clean" (n - 2) (List.length clean);
  (* under 30% drop some survivors needed retries, and the settled
     attempt count landed on their spans *)
  let retried =
    List.filter
      (fun (s : Tracer.span) ->
        match List.assoc_opt "attempts" s.Tracer.attrs with
        | Some (Tracer.Int a) -> a > 1
        | _ -> false)
      clean
  in
  Alcotest.(check bool) "some survivors retried" true (List.length retried > 0)

(* -- e2e: health transitions + SUBSCRIBE alerting ------------------- *)

let test_health_alerting_via_subscription () =
  let n = 6 in
  (* fast retry so a dead router's scrape settles in ~1.5 s, well inside
     the 20 s lease: Lost must come from scrape failures, not eviction *)
  let retry =
    { Hw_hwdb.Rpc.Client.timeout = 0.5; max_attempts = 2; backoff = 2.;
      max_timeout = 1.; jitter = 0.1 }
  in
  let fleet = Fleet_sim.create ~n ~trace_capacity:8 ~lease_s:20. ~retry () in
  let mgr = Fleet_sim.manager fleet in
  await_registered fleet ~within:30.;
  let obs =
    Observer.create ~scrape_period:2. ~lost_after_failures:3 ~recover_after:2
      ~loop:(Fleet_sim.loop fleet) ~manager:mgr ()
  in
  (* alerting = a standing query over FleetHealth *)
  let alerts = ref [] in
  let sub_query =
    match Hw_hwdb.Parser.parse "SELECT router, state, reason FROM FleetHealth [RANGE 10 SECONDS]" with
    | Ok (Hw_hwdb.Ast.Select s) -> s
    | _ -> Alcotest.fail "parse"
  in
  ignore
    (Database.subscribe (Observer.db obs) ~query:sub_query ~period:1. ~callback:(fun rs ->
         List.iter
           (fun row ->
             match row with
             | [ Value.Str router; Value.Str state; Value.Str _reason ] ->
                 if not (List.mem (router, state) !alerts) then
                   alerts := (router, state) :: !alerts
             | _ -> ())
           rs.Query.rows));
  Fleet_sim.run_for fleet 5.;
  (* kill one router: its scrapes start failing *)
  let victim = Option.get (Fleet_sim.agent fleet "r0002") in
  Fault.set_plan (Router.faults (Agent.router victim)).Fault.rpc [ Fault.Drop 1.0 ];
  (* three failed scrape cycles at ~2s each, plus retry tails: run long *)
  let deadline = Fleet_sim.now fleet +. 120. in
  let rec until_lost () =
    if Health.state (Observer.health obs) "r0002" <> Some Health.Lost
       && Fleet_sim.now fleet < deadline
    then begin
      Fleet_sim.run_for fleet 1.;
      until_lost ()
    end
  in
  until_lost ();
  Alcotest.(check (option string)) "victim lost" (Some "lost")
    (Option.map Health.state_to_string (Health.state (Observer.health obs) "r0002"));
  Alcotest.(check bool) "subscription alerted degraded" true
    (List.mem ("r0002", "degraded") !alerts);
  Alcotest.(check bool) "subscription alerted lost" true
    (List.mem ("r0002", "lost") !alerts);
  (* transitions are counted per state and trace-tagged *)
  let lost_count =
    Hw_metrics.Counter.value
      (Hw_metrics.Registry.labeled_counter (Manager.metrics mgr)
         "fleet_health_transitions_total" ~labels:[ ("state", "lost") ])
  in
  Alcotest.(check bool) "transition counted" true (lost_count >= 1);
  (match
     Database.query (Observer.db obs)
       "SELECT COUNT(ts) AS n FROM FleetHealth WHERE trace_id > 0"
   with
  | Ok rs ->
      Alcotest.(check bool) "scrape-driven transitions trace-tagged" true
        (int_of_count (Some rs) >= 1)
  | Error e -> Alcotest.failf "FleetHealth query: %s" e);
  (* revive: clean scrapes bring it back *)
  Fault.set_plan (Router.faults (Agent.router victim)).Fault.rpc [];
  let rec until_healthy () =
    if Health.state (Observer.health obs) "r0002" <> Some Health.Healthy
       && Fleet_sim.now fleet < deadline +. 120.
    then begin
      Fleet_sim.run_for fleet 1.;
      until_healthy ()
    end
  in
  until_healthy ();
  Alcotest.(check (option string)) "victim recovered" (Some "healthy")
    (Option.map Health.state_to_string (Health.state (Observer.health obs) "r0002"))

(* -- fleet metrics + Prometheus surfaces ---------------------------- *)

let test_fleet_metrics_surfaces () =
  let n = 4 in
  let fleet = Fleet_sim.create ~n ~trace_capacity:8 () in
  let mgr = Fleet_sim.manager fleet in
  await_registered fleet ~within:30.;
  let obs =
    Observer.create ~scrape_period:2. ~loop:(Fleet_sim.loop fleet) ~manager:mgr ()
  in
  Fleet_sim.run_for fleet 7.;
  Alcotest.(check bool) "scrapes ran" true (Observer.scrapes_total obs >= 2);
  (* per-router series were folded in *)
  (match Observer.series obs ~router:"r0000" "hwdb_inserts_total" with
  | None -> Alcotest.fail "no series for r0000"
  | Some s -> Alcotest.(check bool) "samples scraped" true (Series.samples s >= 2));
  (* FleetMetrics: per-router rows and __fleet__ aggregates *)
  let count q =
    match Database.query (Observer.db obs) q with
    | Ok rs -> int_of_count (Some rs)
    | Error e -> Alcotest.failf "%s: %s" q e
  in
  Alcotest.(check bool) "per-router rows" true
    (count "SELECT COUNT(ts) AS n FROM FleetMetrics WHERE router = 'r0000'" >= 1);
  Alcotest.(check bool) "fleet aggregates" true
    (count "SELECT COUNT(ts) AS n FROM FleetMetrics WHERE router = '__fleet__'" >= 2);
  (* Prometheus text with router labels *)
  let text = Observer.render_prometheus obs in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "per-router sample" true
    (contains "fleet_hwdb_inserts_total{router=\"r0000\"}" text);
  Alcotest.(check bool) "fleet sum" true
    (contains "fleet_hwdb_inserts_total{router=\"__fleet__\",stat=\"sum\"}" text);
  Alcotest.(check bool) "manager registry included" true
    (contains "fleet_sessions" text);
  (* HTTP surfaces round-trip *)
  let get path =
    match
      Http.decode_response (Observer.handle_http obs (Http.encode_request (Http.request Http.GET path)))
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "GET %s: %s" path e
  in
  Alcotest.(check int) "/metrics ok" 200 (get "/metrics").Http.status;
  Alcotest.(check int) "/traces ok" 200 (get "/traces").Http.status;
  let hj = get "/fleet/health" in
  Alcotest.(check int) "/fleet/health ok" 200 hj.Http.status;
  Alcotest.(check bool) "health counts" true (contains "healthy" hj.Http.body)

let () =
  Alcotest.run "hw_obs"
    [
      ( "series",
        [
          Alcotest.test_case "downsampling tiers bounded" `Quick test_series_downsampling;
          Alcotest.test_case "max preserves spikes" `Quick test_series_max_preserves_spikes;
        ] );
      ("health", [ Alcotest.test_case "state machine" `Quick test_health_machine ]);
      ( "e2e",
        [
          Alcotest.test_case "one trace on all surfaces (120 routers)" `Slow
            test_e2e_trace_all_surfaces;
          Alcotest.test_case "cross-node trace under faults" `Slow test_trace_under_faults;
          Alcotest.test_case "health alerting via SUBSCRIBE" `Slow
            test_health_alerting_via_subscription;
          Alcotest.test_case "fleet metrics surfaces" `Slow test_fleet_metrics_surfaces;
        ] );
    ]
