(* Compiled query plans: the differential suite pinning Plan/Plan.Inc to
   the Query interpreter, plus unit tests for the plan cache and the
   incremental subscription machinery. *)

open Hw_hwdb
module Registry = Hw_metrics.Registry
module Counter = Hw_metrics.Counter

let sel_of text =
  match Parser.parse_select text with Ok s -> s | Error e -> Alcotest.fail e

let mkdb () =
  let now = ref 100. in
  let db = Database.create_empty ~metrics:(Registry.create ()) ~now:(fun () -> !now) () in
  (db, now)

let exec db src =
  match Database.execute db src with Ok _ -> () | Error e -> Alcotest.fail e

let rows db src =
  match Database.query db src with Ok rs -> rs.Query.rows | Error e -> Alcotest.fail e

let stats = Alcotest.(triple int int int)

(* -- plan cache ------------------------------------------------------ *)

let test_cache_hit_miss () =
  let db, _ = mkdb () in
  exec db "CREATE TABLE E (n INTEGER)";
  exec db "INSERT INTO E VALUES (1)";
  let q = "SELECT n FROM E" in
  Alcotest.check stats "fresh cache" (0, 0, 0) (Database.plan_cache_stats db);
  Alcotest.(check (list (list string)))
    "first run answers"
    [ [ "1" ] ]
    (List.map (List.map Value.to_string) (rows db q));
  Alcotest.check stats "first run misses" (0, 1, 0) (Database.plan_cache_stats db);
  ignore (rows db q);
  Alcotest.check stats "second run hits" (1, 1, 0) (Database.plan_cache_stats db);
  (* the statement-level entry point shares the same cache *)
  exec db q;
  Alcotest.check stats "execute hits too" (2, 1, 0) (Database.plan_cache_stats db);
  (* cached_select answers without any parser involvement *)
  (match Database.cached_select db q with
  | Some (Ok rs) -> Alcotest.(check int) "cached rows" 1 (List.length rs.Query.rows)
  | _ -> Alcotest.fail "expected a cache hit");
  Alcotest.check stats "cached_select hit" (3, 1, 0) (Database.plan_cache_stats db)

let test_cache_eviction () =
  let db, _ = mkdb () in
  exec db "CREATE TABLE E (n INTEGER)";
  (* 131 distinct statements through a 128-entry FIFO: 3 evictions *)
  for i = 1 to 131 do
    ignore (rows db (Printf.sprintf "SELECT n FROM E WHERE n = %d" i))
  done;
  Alcotest.check stats "FIFO evicted the overflow" (0, 131, 3) (Database.plan_cache_stats db);
  (* the newest statement is still cached, the oldest is not *)
  ignore (rows db "SELECT n FROM E WHERE n = 131");
  Alcotest.check stats "newest still cached" (1, 131, 3) (Database.plan_cache_stats db);
  ignore (rows db "SELECT n FROM E WHERE n = 1");
  Alcotest.check stats "oldest re-prepared" (1, 132, 4) (Database.plan_cache_stats db)

let test_failed_prepare_not_cached () =
  let db, _ = mkdb () in
  (match Database.query db "SELECT n FROM Later" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "query against a missing table succeeded");
  (match Database.query db "SELECT n FROM Later" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "query against a missing table succeeded");
  let _, misses, _ = Database.plan_cache_stats db in
  Alcotest.(check int) "failures re-prepare (never cached)" 2 misses;
  (* ... which is exactly what lets CREATE TABLE heal the statement *)
  exec db "CREATE TABLE Later (n INTEGER)";
  exec db "INSERT INTO Later VALUES (7)";
  Alcotest.(check (list (list string)))
    "healed after CREATE TABLE"
    [ [ "7" ] ]
    (List.map (List.map Value.to_string) (rows db "SELECT n FROM Later"))

let test_cache_counters_scrape_at_zero () =
  (* the counter family is registered when the database is created, not
     on first use, so a scrape of a fresh router shows explicit zeros *)
  let now = ref 100. in
  let metrics = Registry.create () in
  let db = Database.create ~metrics ~now:(fun () -> !now) () in
  Database.tick db;
  let metric_row name =
    match
      Database.query db
        (Printf.sprintf "SELECT value FROM Metrics [NOW] WHERE name = '%s'" name)
    with
    | Ok { Query.rows = [ [ v ] ]; _ } -> Value.to_string v
    | Ok _ -> Alcotest.fail (name ^ " not exported exactly once")
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun n -> Alcotest.(check string) n "0" (metric_row n))
    [
      "hwdb_plan_cache_hits_total";
      "hwdb_plan_cache_misses_total";
      "hwdb_plan_cache_evictions_total";
    ]

let test_eager_resolution_divergence () =
  (* documented divergence: the interpreter resolves columns per row, so
     an unknown column over an empty window sails through; the compiled
     plan rejects it at prepare time *)
  let db, _ = mkdb () in
  exec db "CREATE TABLE E (n INTEGER)";
  let tbl name = Database.table db name in
  (match Query.exec ~lookup:tbl ~now:100. (sel_of "SELECT ghost FROM E") with
  | Ok rs -> Alcotest.(check int) "interpreter: lazily fine on empty window" 0 (List.length rs.Query.rows)
  | Error e -> Alcotest.fail ("interpreter changed behavior: " ^ e));
  match Database.query db "SELECT ghost FROM E" with
  | Error e ->
      Alcotest.(check bool) "plan rejects at prepare" true
        (Re.execp (Re.compile (Re.str "unknown column")) e)
  | Ok _ -> Alcotest.fail "prepare accepted an unknown column"

(* -- incremental subscriptions --------------------------------------- *)

let subscribe db text ~period =
  let results = ref [] in
  let id =
    Database.subscribe db ~query:(sel_of text) ~period ~callback:(fun rs ->
        results := rs :: !results)
  in
  (id, results)

let last results =
  match !results with
  | rs :: _ -> List.map (List.map Value.to_string) rs.Query.rows
  | [] -> Alcotest.fail "no delivery"

let test_inc_window_retraction () =
  let db, now = mkdb () in
  exec db "CREATE TABLE E (n INTEGER)";
  let _, results = subscribe db "SELECT n FROM E [RANGE 2 SECONDS]" ~period:1. in
  exec db "INSERT INTO E VALUES (1)";
  now := 101.;
  Database.tick db;
  Alcotest.(check (list (list string))) "row inside window" [ [ "1" ] ] (last results);
  exec db "INSERT INTO E VALUES (2)";
  now := 102.;
  Database.tick db;
  Alcotest.(check (list (list string))) "both inside" [ [ "1" ]; [ "2" ] ] (last results);
  now := 103.;
  Database.tick db;
  (* ts=100 left the closed interval [101, 103]; ts=101 is still in *)
  Alcotest.(check (list (list string))) "oldest retracted" [ [ "2" ] ] (last results);
  now := 104.;
  Database.tick db;
  Alcotest.(check (list (list string))) "window drained" [] (last results)

let test_inc_aggregate () =
  let db, now = mkdb () in
  exec db "CREATE TABLE F (who VARCHAR, bytes INTEGER)";
  let _, results =
    subscribe db "SELECT who, SUM(bytes) AS b FROM F [RANGE 10 SECONDS] GROUP BY who" ~period:1.
  in
  exec db "INSERT INTO F VALUES ('tv', 4)";
  exec db "INSERT INTO F VALUES ('tv', 6)";
  exec db "INSERT INTO F VALUES ('phone', 1)";
  now := 101.;
  Database.tick db;
  Alcotest.(check (list (list string)))
    "groups in first-appearance order"
    [ [ "tv"; "10" ]; [ "phone"; "1" ] ]
    (last results);
  now := 111.5;
  Database.tick db;
  Alcotest.(check (list (list string))) "window drained, groups gone" [] (last results)

let test_inc_shared_view_single_eval () =
  let now = ref 100. in
  let metrics = Registry.create () in
  let db = Database.create_empty ~metrics ~now:(fun () -> !now) () in
  exec db "CREATE TABLE E (n INTEGER)";
  let text = "SELECT COUNT(*) AS c FROM E" in
  let _, r1 = subscribe db text ~period:1. in
  let _, r2 = subscribe db text ~period:1. in
  let evals () = Counter.value (Registry.counter metrics "hwdb_subscription_evals_total") in
  now := 101.;
  Database.tick db;
  Alcotest.(check int) "one evaluation for two subscribers" 1 (evals ());
  Alcotest.(check (list (list string))) "first delivered" [ [ "0" ] ] (last r1);
  Alcotest.(check (list (list string))) "second delivered same snapshot" [ [ "0" ] ] (last r2);
  now := 102.;
  Database.tick db;
  Alcotest.(check int) "still one per tick" 2 (evals ())

let test_inc_clear_resyncs () =
  let db, now = mkdb () in
  exec db "CREATE TABLE E (n INTEGER)";
  let _, results = subscribe db "SELECT COUNT(*) AS c FROM E" ~period:1. in
  exec db "INSERT INTO E VALUES (1)";
  exec db "INSERT INTO E VALUES (2)";
  now := 101.;
  Database.tick db;
  Alcotest.(check (list (list string))) "counts both rows" [ [ "2" ] ] (last results);
  (* the table is cleared underneath the standing query: the safety
     valve must rebuild from scan instead of serving stale deltas *)
  Table.clear (Option.get (Database.table db "E"));
  exec db "INSERT INTO E VALUES (3)";
  now := 102.;
  Database.tick db;
  Alcotest.(check (list (list string))) "resynced after clear" [ [ "1" ] ] (last results)

let test_inc_sub_before_create () =
  let db, now = mkdb () in
  let id, results = subscribe db "SELECT n FROM Later [NOW]" ~period:1. in
  now := 101.;
  Database.tick db;
  Alcotest.(check (list string)) "errors silently skipped (no delivery)" [] (
    List.concat_map (fun rs -> List.map (fun _ -> "x") rs.Query.rows) !results);
  exec db "CREATE TABLE Later (n INTEGER)";
  exec db "INSERT INTO Later VALUES (9)";
  now := 102.;
  Database.tick db;
  Alcotest.(check (list (list string))) "starts answering after CREATE" [ [ "9" ] ] (last results);
  Alcotest.(check bool) "unsubscribe detaches" true (Database.unsubscribe db id);
  exec db "INSERT INTO Later VALUES (10)";
  now := 103.;
  Database.tick db;
  Alcotest.(check int) "no further deliveries" 0
    (List.length (List.filter (fun rs -> rs.Query.rows = [ [ Value.Int 10 ] ]) !results))

let test_inc_direct_resync_counter () =
  let tbl = Table.create ~name:"T" ~capacity:16 [ ("n", Value.T_int) ] in
  let lookup name = if name = "T" then Some tbl else None in
  let plan =
    match Plan.prepare ~lookup (sel_of "SELECT COUNT(*) AS c FROM T") with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let inc = Option.get (Plan.Inc.create plan) in
  ignore (Table.add_hook tbl (fun tu -> Plan.Inc.observe inc tu));
  (match Table.insert tbl ~now:100. [ Value.Int 1 ] with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "seeding is not a resync" 0 (Plan.Inc.resyncs inc);
  ignore (Plan.Inc.result inc ~now:100.);
  Table.clear tbl;
  (match Plan.Inc.result inc ~now:101. with
  | Ok rs -> Alcotest.(check bool) "empty after clear" true (rs.Query.rows = [ [ Value.Int 0 ] ])
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "clear forced one resync" 1 (Plan.Inc.resyncs inc)

(* -- suite ----------------------------------------------------------- *)

let () =
  Alcotest.run "hw_plan"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest (Plan_diff.exec_equivalence ~count:8_000);
          QCheck_alcotest.to_alcotest (Plan_diff.stream_equivalence ~count:2_500);
        ] );
      ( "plan_cache",
        [
          Alcotest.test_case "hit/miss accounting" `Quick test_cache_hit_miss;
          Alcotest.test_case "FIFO eviction at 128" `Quick test_cache_eviction;
          Alcotest.test_case "failed prepare never cached" `Quick test_failed_prepare_not_cached;
          Alcotest.test_case "counters scrape at zero" `Quick test_cache_counters_scrape_at_zero;
          Alcotest.test_case "eager resolution divergence" `Quick test_eager_resolution_divergence;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "RANGE window retraction" `Quick test_inc_window_retraction;
          Alcotest.test_case "incremental aggregates" `Quick test_inc_aggregate;
          Alcotest.test_case "shared view evaluates once" `Quick test_inc_shared_view_single_eval;
          Alcotest.test_case "Table.clear forces resync" `Quick test_inc_clear_resyncs;
          Alcotest.test_case "subscribe before CREATE TABLE" `Quick test_inc_sub_before_create;
          Alcotest.test_case "resync counter" `Quick test_inc_direct_resync_counter;
        ] );
    ]
