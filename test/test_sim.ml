(* hw_sim: event loop, PRNG, RSSI model, internet node, device basics *)

open Hw_packet
open Hw_sim

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)
(* ------------------------------------------------------------------ *)

let test_loop_ordering () =
  let loop = Event_loop.create () in
  let log = ref [] in
  Event_loop.at loop 3. (fun () -> log := "c" :: !log);
  Event_loop.at loop 1. (fun () -> log := "a" :: !log);
  Event_loop.at loop 2. (fun () -> log := "b" :: !log);
  Event_loop.run_until loop 10.;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at deadline" 10. (Event_loop.now loop)

let test_loop_same_time_fifo () =
  let loop = Event_loop.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Event_loop.at loop 1. (fun () -> log := i :: !log)
  done;
  Event_loop.run_until loop 1.;
  Alcotest.(check (list int)) "stable at same instant" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_loop_cascading () =
  let loop = Event_loop.create () in
  let fired = ref 0. in
  Event_loop.after loop 1. (fun () ->
      Event_loop.after loop 2. (fun () -> fired := Event_loop.now loop));
  Event_loop.run_until loop 5.;
  Alcotest.(check (float 1e-9)) "chained event time" 3. !fired

let test_loop_run_until_boundary () =
  let loop = Event_loop.create () in
  let count = ref 0 in
  Event_loop.at loop 5. (fun () -> incr count);
  Event_loop.at loop 5.0001 (fun () -> incr count);
  Event_loop.run_until loop 5.;
  Alcotest.(check int) "inclusive boundary" 1 !count;
  Alcotest.(check int) "later event pending" 1 (Event_loop.pending loop)

let test_loop_every () =
  let loop = Event_loop.create () in
  let count = ref 0 in
  Event_loop.every loop 1. (fun () -> incr count);
  Event_loop.run_until loop 5.5;
  Alcotest.(check int) "five firings" 5 !count

let test_loop_past_events_run_now () =
  let loop = Event_loop.create ~start:10. () in
  let at = ref 0. in
  Event_loop.at loop 1. (fun () -> at := Event_loop.now loop);
  ignore (Event_loop.step loop);
  Alcotest.(check (float 1e-9)) "clamped to now" 10. !at

let test_loop_every_survives_exception () =
  let metrics = Hw_metrics.Registry.create () in
  let loop = Event_loop.create ~metrics () in
  let fired = ref 0 in
  Event_loop.every loop 1. (fun () ->
      incr fired;
      if !fired <= 2 then failwith "boom");
  Event_loop.run_until loop 5.;
  Alcotest.(check int) "kept firing after the exceptions" 5 !fired;
  Alcotest.(check int) "exceptions counted" 2
    (Hw_metrics.Counter.value
       (Hw_metrics.Registry.counter metrics "event_loop_timer_errors_total"))

(* Model-based qcheck property for the event queue: run a random script
   of root events, each of which schedules further events from inside
   its handler (interleaved pushes and pops), and compare the observed
   firing order against a reference model that pops strictly by
   (time, insertion seq).  Equal timestamps are common by construction
   (integer times), so the FIFO tie-break is exercised heavily. *)
let prop_loop_pop_order =
  let script_gen =
    QCheck.(
      list_of_size (Gen.int_range 0 40) (pair (int_bound 9) (small_list (int_bound 3))))
  in
  let model_run roots =
    let seq = ref 0 in
    let q = ref [] in
    let push time label children =
      q := (time, !seq, label, children) :: !q;
      incr seq
    in
    List.iteri (fun i (t, cs) -> push t (Printf.sprintf "r%d" i) cs) roots;
    let order = ref [] in
    let rec go () =
      match List.sort compare !q with
      | [] -> ()
      | (time, s, label, children) :: _ ->
          q := List.filter (fun (_, s', _, _) -> s' <> s) !q;
          order := label :: !order;
          List.iteri
            (fun j d -> push (time + d) (Printf.sprintf "%s.%d" label j) [])
            children;
          go ()
    in
    go ();
    List.rev !order
  in
  let loop_run roots =
    let loop = Event_loop.create () in
    let order = ref [] in
    List.iteri
      (fun i (t, children) ->
        Event_loop.at loop (float_of_int t) (fun () ->
            order := Printf.sprintf "r%d" i :: !order;
            List.iteri
              (fun j d ->
                Event_loop.after loop (float_of_int d) (fun () ->
                    order := Printf.sprintf "r%d.%d" i j :: !order))
              children))
      roots;
    Event_loop.run_until loop 1000.;
    List.rev !order
  in
  QCheck.Test.make ~name:"events fire in (time, seq) order under interleaved scheduling"
    ~count:300 script_gen (fun roots -> loop_run roots = model_run roots)

(* ------------------------------------------------------------------ *)
(* PRNG                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:1 in
  let xs = List.init 10 (fun _ -> Prng.float a) in
  let ys = List.init 10 (fun _ -> Prng.float b) in
  Alcotest.(check bool) "same seed, same stream" true (xs = ys);
  let c = Prng.create ~seed:2 in
  let zs = List.init 10 (fun _ -> Prng.float c) in
  Alcotest.(check bool) "different seed differs" false (xs = zs)

let test_prng_ranges () =
  let r = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let f = Prng.float r in
    if f < 0. || f >= 1. then Alcotest.fail "float out of range";
    let i = Prng.int r 7 in
    if i < 0 || i >= 7 then Alcotest.fail "int out of range";
    let e = Prng.exponential r ~mean:5. in
    if e < 0. then Alcotest.fail "exponential negative"
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int r 0))

let test_prng_exponential_mean () =
  let r = Prng.create ~seed:4 in
  let n = 20_000 in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Prng.exponential r ~mean:5.
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean close to 5" true (mean > 4.5 && mean < 5.5)

(* ------------------------------------------------------------------ *)
(* RSSI                                                                *)
(* ------------------------------------------------------------------ *)

let test_rssi_monotone_with_distance () =
  let p = Rssi.default_params in
  let r1 = Rssi.rssi_at p ~distance_m:1. in
  let r10 = Rssi.rssi_at p ~distance_m:10. in
  let r50 = Rssi.rssi_at p ~distance_m:50. in
  Alcotest.(check bool) "closer is stronger" true (r1 >= r10 && r10 >= r50);
  Alcotest.(check bool) "clamped" true (r1 <= -20 && r50 >= -100)

let test_rssi_quality_and_retries () =
  Alcotest.(check (float 0.01)) "strong quality" 1.0 (Rssi.quality (-40));
  Alcotest.(check (float 0.01)) "dead quality" 0.0 (Rssi.quality (-98));
  Alcotest.(check bool) "retry grows as signal fades" true
    (Rssi.retry_probability (-90) > Rssi.retry_probability (-60));
  Alcotest.(check (float 0.001)) "no loss when strong" 0. (Rssi.loss_probability (-50))

(* ------------------------------------------------------------------ *)
(* Internet node                                                       *)
(* ------------------------------------------------------------------ *)

let client_mac = Mac.local 1
let client_ip = Ip.of_octets 10 0 0 100

let make_internet () =
  let loop = Event_loop.create () in
  let received = ref [] in
  let net = Internet.create ~loop ~send:(fun frame -> received := frame :: !received) () in
  Internet.add_default_zone net;
  (loop, net, received)

let drain loop = Event_loop.run_for loop 1.

let decode_all frames = List.filter_map (fun f -> Result.to_option (Packet.decode f)) frames

let test_internet_proxy_arp () =
  let loop, net, received = make_internet () in
  let req =
    Packet.arp_packet ~src_mac:client_mac
      (Arp.request ~sender_mac:client_mac ~sender_ip:client_ip
         ~target_ip:(Ip.of_octets 93 184 216 10))
  in
  Internet.deliver net (Packet.encode req);
  drain loop;
  (match decode_all !received with
  | [ { Packet.l3 = Packet.Arp arp; _ } ] ->
      Alcotest.(check bool) "reply" true (arp.Arp.op = Arp.Reply);
      Alcotest.(check bool) "from internet mac" true (Mac.equal arp.Arp.sender_mac Internet.mac)
  | _ -> Alcotest.fail "no proxy-arp reply");
  (* LAN addresses are not proxied *)
  received := [];
  let req_lan =
    Packet.arp_packet ~src_mac:client_mac
      (Arp.request ~sender_mac:client_mac ~sender_ip:client_ip ~target_ip:(Ip.of_octets 10 0 0 1))
  in
  Internet.deliver net (Packet.encode req_lan);
  drain loop;
  Alcotest.(check int) "no reply for lan" 0 (List.length !received)

let test_internet_dns_authority () =
  let loop, net, received = make_internet () in
  let query = Dns_wire.query ~id:9 "www.facebook.com" Dns_wire.A in
  let pkt =
    Packet.udp_packet ~src_mac:client_mac ~dst_mac:Internet.mac ~src_ip:client_ip
      ~dst_ip:Internet.resolver_ip ~src_port:5353 ~dst_port:53 (Dns_wire.encode query)
  in
  Internet.deliver net (Packet.encode pkt);
  drain loop;
  (match decode_all !received with
  | [ { Packet.l3 = Packet.Ipv4 (_, Packet.Udp u); _ } ] -> (
      match Dns_wire.decode u.Udp.payload with
      | Ok resp ->
          Alcotest.(check int) "id echoed" 9 resp.Dns_wire.id;
          Alcotest.(check bool) "has answer" true (List.length resp.Dns_wire.answers = 1)
      | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "no dns answer");
  (* unknown name -> NXDOMAIN *)
  received := [];
  let query = Dns_wire.query ~id:10 "no.such.zone" Dns_wire.A in
  let pkt =
    Packet.udp_packet ~src_mac:client_mac ~dst_mac:Internet.mac ~src_ip:client_ip
      ~dst_ip:Internet.resolver_ip ~src_port:5353 ~dst_port:53 (Dns_wire.encode query)
  in
  Internet.deliver net (Packet.encode pkt);
  drain loop;
  match decode_all !received with
  | [ { Packet.l3 = Packet.Ipv4 (_, Packet.Udp u); _ } ] -> (
      match Dns_wire.decode u.Udp.payload with
      | Ok resp -> Alcotest.(check bool) "nxdomain" true (resp.Dns_wire.rcode = Dns_wire.Name_error)
      | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "no answer for unknown"

let test_internet_reverse_zone () =
  let loop, net, received = make_internet () in
  let fb = Option.get (Internet.lookup_zone net "www.facebook.com") in
  let query = Dns_wire.query ~id:11 (Dns_wire.reverse_name fb) Dns_wire.PTR in
  let pkt =
    Packet.udp_packet ~src_mac:client_mac ~dst_mac:Internet.mac ~src_ip:client_ip
      ~dst_ip:Internet.resolver_ip ~src_port:5353 ~dst_port:53 (Dns_wire.encode query)
  in
  Internet.deliver net (Packet.encode pkt);
  drain loop;
  match decode_all !received with
  | [ { Packet.l3 = Packet.Ipv4 (_, Packet.Udp u); _ } ] -> (
      match (Result.get_ok (Dns_wire.decode u.Udp.payload)).Dns_wire.answers with
      | [ { Dns_wire.rdata = Dns_wire.Ptr_data name; _ } ] ->
          Alcotest.(check bool) "ptr names a facebook host" true
            (name = "www.facebook.com" || name = "facebook.com")
      | _ -> Alcotest.fail "no PTR answer")
  | _ -> Alcotest.fail "no reverse answer"

let test_internet_tcp_behaviour () =
  let loop, net, received = make_internet () in
  let dst_ip = Option.get (Internet.lookup_zone net "www.example.com") in
  (* SYN -> SYN/ACK *)
  let syn =
    Packet.tcp_packet ~flags:Tcp.syn_flag ~src_mac:client_mac ~dst_mac:Internet.mac
      ~src_ip:client_ip ~dst_ip ~src_port:40000 ~dst_port:80 ""
  in
  Internet.deliver net (Packet.encode syn);
  drain loop;
  (match decode_all !received with
  | [ { Packet.l3 = Packet.Ipv4 (_, Packet.Tcp seg); _ } ] ->
      Alcotest.(check bool) "syn/ack" true (seg.Tcp.flags.Tcp.syn && seg.Tcp.flags.Tcp.ack)
  | _ -> Alcotest.fail "no syn/ack");
  (* data -> response sized by the port factor (80 -> 20x) *)
  received := [];
  let data =
    Packet.tcp_packet ~src_mac:client_mac ~dst_mac:Internet.mac ~src_ip:client_ip ~dst_ip
      ~src_port:40000 ~dst_port:80 (String.make 100 'q')
  in
  Internet.deliver net (Packet.encode data);
  Event_loop.run_for loop 2.;
  let response_bytes =
    List.fold_left
      (fun acc pkt ->
        match pkt.Packet.l3 with
        | Packet.Ipv4 (_, Packet.Tcp seg) -> acc + String.length seg.Tcp.payload
        | _ -> acc)
      0 (decode_all !received)
  in
  Alcotest.(check int) "20x response" 2000 response_bytes

let test_internet_icmp_echo () =
  let loop, net, received = make_internet () in
  let dst_ip = Ip.of_octets 93 184 216 99 in
  let ping =
    Packet.icmp_echo ~src_mac:client_mac ~dst_mac:Internet.mac ~src_ip:client_ip ~dst_ip ~id:1
      ~seq:1
  in
  Internet.deliver net (Packet.encode ping);
  drain loop;
  match decode_all !received with
  | [ { Packet.l3 = Packet.Ipv4 (ip, Packet.Icmp icmp); _ } ] ->
      Alcotest.(check int) "echo reply" 0 icmp.Icmp.typ;
      Alcotest.(check bool) "from pinged address" true (Ip.equal ip.Ipv4.src dst_ip)
  | _ -> Alcotest.fail "no echo reply"

(* ------------------------------------------------------------------ *)
(* Device against a scripted wire                                      *)
(* ------------------------------------------------------------------ *)

let test_device_dhcp_against_script () =
  let loop = Event_loop.create () in
  let sent = ref [] in
  let device =
    Device.create
      ~config:(Device.wired ~name:"probe" ~mac:client_mac [])
      ~loop
      ~send:(fun frame -> sent := frame :: !sent)
      ()
  in
  Device.start device;
  Event_loop.run_for loop 0.1;
  (* expect a DISCOVER *)
  let discover =
    match decode_all !sent with
    | [ { Packet.l3 = Packet.Ipv4 (_, Packet.Udp u); _ } ] ->
        Result.get_ok (Dhcp_wire.decode u.Udp.payload)
    | _ -> Alcotest.fail "no discover"
  in
  Alcotest.(check bool) "discover" true
    (Dhcp_wire.find_message_type discover = Some Dhcp_wire.Discover);
  Alcotest.(check bool) "hostname option" true
    (Dhcp_wire.find_hostname discover = Some "probe");
  (* script an OFFER back *)
  sent := [];
  let server_ip = Ip.of_octets 10 0 0 1 in
  let yiaddr = Ip.of_octets 10 0 0 123 in
  let offer =
    Dhcp_wire.make_reply
      ~options:
        [
          Dhcp_wire.Server_id server_ip;
          Dhcp_wire.Lease_time 60l;
          Dhcp_wire.Dns_servers [ server_ip ];
        ]
      ~xid:discover.Dhcp_wire.xid ~chaddr:client_mac ~yiaddr ~siaddr:server_ip Dhcp_wire.Offer
  in
  Device.deliver device
    (Packet.encode
       (Packet.dhcp_packet ~src_mac:(Mac.local 0xaa) ~dst_mac:Mac.broadcast ~src_ip:server_ip
          ~dst_ip:Ip.broadcast offer));
  (* expect a REQUEST *)
  let request =
    match decode_all !sent with
    | [ { Packet.l3 = Packet.Ipv4 (_, Packet.Udp u); _ } ] ->
        Result.get_ok (Dhcp_wire.decode u.Udp.payload)
    | _ -> Alcotest.fail "no request"
  in
  Alcotest.(check bool) "request" true
    (Dhcp_wire.find_message_type request = Some Dhcp_wire.Request);
  Alcotest.(check bool) "requests offered ip" true
    (Dhcp_wire.find_requested_ip request = Some yiaddr);
  (* ACK binds the device *)
  let ack = { offer with Dhcp_wire.options = Dhcp_wire.Message_type Dhcp_wire.Ack :: List.tl offer.Dhcp_wire.options } in
  Device.deliver device
    (Packet.encode
       (Packet.dhcp_packet ~src_mac:(Mac.local 0xaa) ~dst_mac:Mac.broadcast ~src_ip:server_ip
          ~dst_ip:Ip.broadcast ack));
  Alcotest.(check bool) "bound" true (Device.dhcp_state device = Device.Bound);
  Alcotest.(check bool) "ip" true (Device.ip device = Some yiaddr)

let test_device_nak_denies_and_retries () =
  let loop = Event_loop.create () in
  let sent = ref [] in
  let device =
    Device.create
      ~config:(Device.wired ~name:"probe" ~mac:client_mac [])
      ~loop
      ~send:(fun frame -> sent := frame :: !sent)
      ()
  in
  let denied = ref 0 in
  Device.on_denied device (fun () -> incr denied);
  Device.start device;
  Event_loop.run_for loop 0.1;
  let discover =
    match decode_all !sent with
    | [ { Packet.l3 = Packet.Ipv4 (_, Packet.Udp u); _ } ] ->
        Result.get_ok (Dhcp_wire.decode u.Udp.payload)
    | _ -> Alcotest.fail "no discover"
  in
  sent := [];
  (* the device in Selecting state receives a NAK... it ignores it and only
     handles OFFER; send an OFFER then NAK the REQUEST *)
  let server_ip = Ip.of_octets 10 0 0 1 in
  let offer =
    Dhcp_wire.make_reply
      ~options:[ Dhcp_wire.Server_id server_ip ]
      ~xid:discover.Dhcp_wire.xid ~chaddr:client_mac ~yiaddr:(Ip.of_octets 10 0 0 50)
      ~siaddr:server_ip Dhcp_wire.Offer
  in
  Device.deliver device
    (Packet.encode
       (Packet.dhcp_packet ~src_mac:(Mac.local 0xaa) ~dst_mac:Mac.broadcast ~src_ip:server_ip
          ~dst_ip:Ip.broadcast offer));
  let nak =
    Dhcp_wire.make_reply
      ~options:[ Dhcp_wire.Server_id server_ip ]
      ~xid:discover.Dhcp_wire.xid ~chaddr:client_mac ~yiaddr:Ip.any ~siaddr:server_ip
      Dhcp_wire.Nak
  in
  Device.deliver device
    (Packet.encode
       (Packet.dhcp_packet ~src_mac:(Mac.local 0xaa) ~dst_mac:Mac.broadcast ~src_ip:server_ip
          ~dst_ip:Ip.broadcast nak));
  Alcotest.(check bool) "denied state" true (Device.dhcp_state device = Device.Denied);
  Alcotest.(check int) "denied callback" 1 !denied;
  (* after the 30 s backoff the device discovers again *)
  sent := [];
  Event_loop.run_for loop 31.;
  Alcotest.(check bool) "retries" true (List.length !sent > 0)

let test_device_wireless_stats () =
  let loop = Event_loop.create () in
  let device =
    Device.create ~seed:5
      ~config:(Device.wireless ~distance_m:40. ~name:"far" ~mac:client_mac [])
      ~loop
      ~send:(fun _ -> ())
      ()
  in
  Alcotest.(check bool) "has rssi" true (Device.rssi device <> None);
  Device.set_distance device 2.;
  let near = Option.get (Device.rssi device) in
  Device.set_distance device 60.;
  let far = Option.get (Device.rssi device) in
  Alcotest.(check bool) "near stronger" true (near > far)

let () =
  Alcotest.run "hw_sim"
    [
      ( "event_loop",
        [
          Alcotest.test_case "ordering" `Quick test_loop_ordering;
          Alcotest.test_case "same-time fifo" `Quick test_loop_same_time_fifo;
          Alcotest.test_case "cascading" `Quick test_loop_cascading;
          Alcotest.test_case "run_until boundary" `Quick test_loop_run_until_boundary;
          Alcotest.test_case "every" `Quick test_loop_every;
          Alcotest.test_case "past events" `Quick test_loop_past_events_run_now;
          Alcotest.test_case "every survives exceptions" `Quick
            test_loop_every_survives_exception;
          QCheck_alcotest.to_alcotest prop_loop_pop_order;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
        ] );
      ( "rssi",
        [
          Alcotest.test_case "monotone" `Quick test_rssi_monotone_with_distance;
          Alcotest.test_case "quality/retries" `Quick test_rssi_quality_and_retries;
        ] );
      ( "internet",
        [
          Alcotest.test_case "proxy arp" `Quick test_internet_proxy_arp;
          Alcotest.test_case "dns authority" `Quick test_internet_dns_authority;
          Alcotest.test_case "reverse zone" `Quick test_internet_reverse_zone;
          Alcotest.test_case "tcp behaviour" `Quick test_internet_tcp_behaviour;
          Alcotest.test_case "icmp echo" `Quick test_internet_icmp_echo;
        ] );
      ( "device",
        [
          Alcotest.test_case "dhcp against script" `Quick test_device_dhcp_against_script;
          Alcotest.test_case "nak denies + retries" `Quick test_device_nak_denies_and_retries;
          Alcotest.test_case "wireless stats" `Quick test_device_wireless_stats;
        ] );
    ]
