(* hw_trace: span recording, tail-sampling, the flight recorder, JSON
   export surfaces, the trace-stamping logger, and the end-to-end causal
   chain of a DHCP handshake through a running home. *)

module Tracer = Hw_trace.Tracer
module Export = Hw_trace.Export
module Log = Hw_trace.Log
module Json = Hw_json.Json
module Database = Hw_hwdb.Database
module Value = Hw_hwdb.Value
module Rpc = Hw_hwdb.Rpc
module Query = Hw_hwdb.Query
module Home = Hw_router.Home
module Router = Hw_router.Router
module Http = Hw_control_api.Http

let make ?(capacity = 16) ?(sample_every = 1) ?(slow_threshold = 1000.) () =
  let t = ref 0. in
  let tracer =
    Tracer.create ~capacity ~sample_every ~slow_threshold
      ~metrics:(Hw_metrics.Registry.create ())
      ~now:(fun () -> !t)
      ()
  in
  (tracer, t)

let span_names (c : Tracer.completed) =
  Array.to_list (Array.map (fun (s : Tracer.span) -> s.Tracer.name) c.Tracer.spans)

let find_span (c : Tracer.completed) name =
  match Array.to_list c.Tracer.spans |> List.find_opt (fun (s : Tracer.span) -> s.Tracer.name = name) with
  | Some s -> s
  | None -> Alcotest.fail (Printf.sprintf "no span %s in trace %d" name c.Tracer.id)

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let test_nesting () =
  let tracer, t = make () in
  Tracer.with_trace tracer "root" (fun () ->
      t := 0.1;
      Tracer.with_span tracer "a" (fun () ->
          Tracer.with_span tracer "a.a" (fun () -> t := 0.2));
      Tracer.with_span tracer "b" (fun () -> ()));
  match Tracer.traces tracer with
  | [ c ] ->
      Alcotest.(check (list string)) "spans in open order"
        [ "root"; "a"; "a.a"; "b" ] (span_names c);
      let root = find_span c "root" and a = find_span c "a" in
      let aa = find_span c "a.a" and b = find_span c "b" in
      Alcotest.(check int) "root has no parent" 0 root.Tracer.parent;
      Alcotest.(check int) "a under root" root.Tracer.span_id a.Tracer.parent;
      Alcotest.(check int) "a.a under a" a.Tracer.span_id aa.Tracer.parent;
      Alcotest.(check int) "b under root" root.Tracer.span_id b.Tracer.parent;
      Alcotest.(check bool) "not errored" false c.Tracer.errored;
      Alcotest.(check (float 1e-9)) "root spans the whole trace" 0.2 c.Tracer.duration
  | l -> Alcotest.fail (Printf.sprintf "expected 1 trace, recorder has %d" (List.length l))

let test_reentrant_trace () =
  (* a packet-out re-entering the datapath nests rather than opening a
     second trace *)
  let tracer, _ = make () in
  Tracer.with_trace tracer "outer" (fun () ->
      Tracer.with_trace tracer "inner" (fun () -> ()));
  match Tracer.traces tracer with
  | [ c ] ->
      Alcotest.(check (list string)) "one trace, nested" [ "outer"; "inner" ] (span_names c);
      Alcotest.(check int) "inner is a child span" 1 (find_span c "inner").Tracer.parent
  | l -> Alcotest.fail (Printf.sprintf "expected 1 trace, got %d" (List.length l))

let test_attrs_and_error () =
  let tracer, _ = make () in
  Tracer.with_trace tracer "root" (fun () ->
      Tracer.with_span tracer "hop" ~attrs:[ ("k", Tracer.Str "v") ] (fun () ->
          Tracer.set_attr tracer "n" (Tracer.Int 7);
          Tracer.mark_error tracer "soft failure"));
  let c = List.hd (Tracer.traces tracer) in
  Alcotest.(check bool) "trace errored" true c.Tracer.errored;
  let hop = find_span c "hop" in
  Alcotest.(check (option string)) "error recorded" (Some "soft failure") hop.Tracer.error;
  Alcotest.(check string) "attrs render in insertion order" "k=v,n=7"
    (Tracer.attrs_to_string hop.Tracer.attrs)

let test_exception_marks_error () =
  let tracer, _ = make ~sample_every:1000 () in
  (try
     Tracer.with_trace tracer "root" (fun () ->
         Tracer.with_span tracer "boom" (fun () -> failwith "kaput"))
   with Failure _ -> ());
  (* errored traces are always kept, even at 1-in-1000 sampling *)
  match Tracer.traces tracer with
  | [ c ] ->
      Alcotest.(check bool) "errored" true c.Tracer.errored;
      let boom = find_span c "boom" in
      Alcotest.(check bool) "exception text captured" true
        (match boom.Tracer.error with Some e -> e <> "" | None -> false)
  | l -> Alcotest.fail (Printf.sprintf "expected errored trace kept, got %d" (List.length l))

(* ------------------------------------------------------------------ *)
(* Tail sampling and the flight recorder                               *)
(* ------------------------------------------------------------------ *)

let test_sampling_one_in_n () =
  let tracer, _ = make ~sample_every:3 () in
  for _ = 1 to 7 do
    Tracer.with_trace tracer "t" (fun () -> ())
  done;
  Alcotest.(check int) "started" 7 (Tracer.started tracer);
  (* first completion sampled, then every third: traces 1, 4, 7 *)
  Alcotest.(check (list int)) "kept 1-in-3, newest first" [ 7; 4; 1 ]
    (List.map (fun (c : Tracer.completed) -> c.Tracer.id) (Tracer.traces tracer));
  Alcotest.(check int) "dropped the rest" 4 (Tracer.dropped tracer)

let test_slow_always_kept () =
  let tracer, t = make ~sample_every:1000 ~slow_threshold:0.05 () in
  Tracer.with_trace tracer "fast" (fun () -> ());
  (* the first trace is sampled by the 1-in-N discipline; the next fast
     one must be dropped while a slow one survives *)
  Tracer.with_trace tracer "fast2" (fun () -> ());
  Tracer.with_trace tracer "slow" (fun () -> t := !t +. 0.1);
  let roots =
    List.map (fun (c : Tracer.completed) -> c.Tracer.spans.(0).Tracer.name) (Tracer.traces tracer)
  in
  Alcotest.(check (list string)) "slow kept, unremarkable dropped" [ "slow"; "fast" ] roots

let test_ring_bounded () =
  let tracer, _ = make ~capacity:4 () in
  for _ = 1 to 10 do
    Tracer.with_trace tracer "t" (fun () -> ())
  done;
  Alcotest.(check int) "capacity" 4 (Tracer.capacity tracer);
  Alcotest.(check int) "ring holds the last 4" 4 (Tracer.kept tracer);
  Alcotest.(check (list int)) "newest first, oldest evicted" [ 10; 9; 8; 7 ]
    (List.map (fun (c : Tracer.completed) -> c.Tracer.id) (Tracer.traces tracer));
  Alcotest.(check bool) "find hits a kept trace" true (Tracer.find tracer 8 <> None);
  Alcotest.(check bool) "find misses an evicted trace" true (Tracer.find tracer 3 = None)

let test_untraced_path_touches_nothing () =
  let clock_reads = ref 0 in
  let tracer =
    Tracer.create
      ~metrics:(Hw_metrics.Registry.create ())
      ~now:(fun () ->
        incr clock_reads;
        0.)
      ()
  in
  clock_reads := 0;
  for _ = 1 to 100 do
    Alcotest.(check int) "value passes through" 41 (Tracer.with_span tracer "hot" (fun () -> 41))
  done;
  Alcotest.(check int) "no clock reads outside a trace" 0 !clock_reads;
  Alcotest.(check int) "nothing recorded" 0 (Tracer.kept tracer);
  (* the shared disabled tracer behaves the same, plus with_trace *)
  Alcotest.(check bool) "disabled is disabled" false (Tracer.enabled Tracer.disabled);
  Alcotest.(check int) "disabled with_trace passes through" 42
    (Tracer.with_trace Tracer.disabled "t" (fun () -> 42))

let test_invalid_args () =
  let reject f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "capacity 0 rejected" true
    (reject (fun () ->
         Tracer.create ~capacity:0 ~metrics:(Hw_metrics.Registry.create ()) ~now:(fun () -> 0.) ()));
  Alcotest.(check bool) "sample_every 0 rejected" true
    (reject (fun () ->
         Tracer.create ~sample_every:0 ~metrics:(Hw_metrics.Registry.create ()) ~now:(fun () -> 0.) ()))

(* ------------------------------------------------------------------ *)
(* Export: JSON escaping survives hostile span names and attrs         *)
(* ------------------------------------------------------------------ *)

let nasty = "a \"quoted\" \\back\\slash\ttab\nnewline \x01ctl"

let test_chrome_json_escaping () =
  let tracer, _ = make () in
  Tracer.with_trace tracer nasty ~attrs:[ (nasty, Tracer.Str nasty) ] (fun () -> ());
  let c = List.hd (Tracer.traces tracer) in
  let reparsed = Json.of_string (Json.to_string (Export.chrome_json c)) in
  let events = Json.get_list (Json.member "traceEvents" reparsed) in
  Alcotest.(check int) "one event" 1 (List.length events);
  let ev = List.hd events in
  Alcotest.(check string) "name round-trips" nasty (Json.get_string (Json.member "name" ev));
  Alcotest.(check string) "attr value round-trips" nasty
    (Json.get_string (Json.member nasty (Json.member "args" ev)));
  Alcotest.(check string) "complete event" "X" (Json.get_string (Json.member "ph" ev));
  (* and the plain listing too *)
  let reparsed = Json.of_string (Json.to_string (Export.trace_json c)) in
  let span = List.hd (Json.get_list (Json.member "spans" reparsed)) in
  Alcotest.(check string) "span name round-trips" nasty
    (Json.get_string (Json.member "name" span))

let test_chrome_json_timebase () =
  let tracer, t = make () in
  t := 2.5;
  Tracer.with_trace tracer "root" (fun () ->
      t := 2.75;
      Tracer.with_span tracer "child" (fun () -> t := 3.))
  ;
  let c = List.hd (Tracer.traces tracer) in
  let j = Export.chrome_json c in
  let events = Json.get_list (Json.member "traceEvents" j) in
  let root = List.hd events and child = List.nth events 1 in
  Alcotest.(check (float 1.)) "ts in microseconds" 2.5e6
    (Json.to_float (Json.member "ts" root));
  Alcotest.(check (float 1.)) "dur in microseconds" 0.5e6
    (Json.to_float (Json.member "dur" root));
  Alcotest.(check int) "child links its parent" 1
    (Json.to_int (Json.member "parent" (Json.member "args" child)))

(* ------------------------------------------------------------------ *)
(* The trace-stamping logger                                           *)
(* ------------------------------------------------------------------ *)

let test_log_stamps_trace () =
  let tracer, _ = make () in
  Log.use tracer;
  Log.set_output None;
  Log.info "before any trace";
  let id_inside = ref None in
  Tracer.with_trace tracer "root" (fun () ->
      id_inside := Tracer.trace_id tracer;
      Log.warn ~src:"test" "inside trace %d" (Option.get !id_inside));
  (match Log.recent () with
  | inside :: before :: _ ->
      Alcotest.(check (option int)) "stamped with the active trace" !id_inside
        inside.Log.trace;
      Alcotest.(check bool) "level kept" true (inside.Log.level = Log.Warn);
      Alcotest.(check string) "source kept" "test" inside.Log.src;
      Alcotest.(check (option int)) "no stamp outside a trace" None before.Log.trace
  | _ -> Alcotest.fail "expected two records in the ring");
  (* records below the threshold are discarded *)
  Log.set_level Log.Warn;
  let n = List.length (Log.recent ()) in
  Log.info "filtered out";
  Alcotest.(check int) "below-threshold record dropped" n (List.length (Log.recent ()));
  Log.set_level Log.Info;
  Log.use Tracer.disabled;
  Log.set_output (Some Format.err_formatter)

(* ------------------------------------------------------------------ *)
(* End to end: one DHCP handshake, one causal chain, three surfaces    *)
(* ------------------------------------------------------------------ *)

let test_home_trace_end_to_end () =
  let home = Home.standard_home ~seed:11 () in
  let r = Home.router home in
  (* hwdb RPC plane, as a visualisation UI would attach *)
  let from_router = Queue.create () in
  Router.set_rpc_send r (fun ~to_:_ data -> Queue.add data from_router);
  let client = Rpc.Client.create ~send:(fun d -> Router.rpc_datagram r ~from:"ui:9100" d) () in
  let published = ref [] in
  Rpc.Client.on_publish client (fun ~subscription:_ rs -> published := rs :: !published);
  let pump () =
    while not (Queue.is_empty from_router) do
      Rpc.Client.handle_datagram client (Queue.pop from_router)
    done
  in
  let sub_ok = ref false in
  Rpc.Client.request client "SUBSCRIBE SELECT trace_id, span, parent FROM Traces [NOW] EVERY 2 SECONDS"
    ~on_reply:(fun reply -> sub_ok := Result.is_ok reply);
  pump ();
  Alcotest.(check bool) "SUBSCRIBE ... FROM Traces accepted" true !sub_ok;
  Home.permit_all home;
  Home.run_for home 8.;
  pump ();
  (* 1. the flight recorder holds the DHCP grant's causal chain: packet-in
     rooted at the datapath, through controller dispatch and the DHCP
     handler, down to the hwdb Leases insert *)
  let tracer = Router.tracer r in
  let is_grant (c : Tracer.completed) =
    c.Tracer.spans.(0).Tracer.name = "dp.packet_in"
    && Array.exists
         (fun (s : Tracer.span) ->
           s.Tracer.name = "hwdb.insert"
           && List.exists (fun (k, v) -> k = "table" && v = Tracer.Str "Leases") s.Tracer.attrs)
         c.Tracer.spans
    && Array.exists (fun (s : Tracer.span) -> s.Tracer.name = "dhcp.handle") c.Tracer.spans
  in
  let grant =
    match List.find_opt is_grant (Tracer.traces tracer) with
    | Some c -> c
    | None -> Alcotest.fail "no DHCP-grant trace in the flight recorder"
  in
  Alcotest.(check bool) "at least 4 spans" true (Array.length grant.Tracer.spans >= 4);
  (* the chain is causally linked: each hop is a descendant of the root
     through its parent pointers *)
  let span_by_id id =
    Array.to_list grant.Tracer.spans
    |> List.find (fun (s : Tracer.span) -> s.Tracer.span_id = id)
  in
  let rec depth (s : Tracer.span) =
    if s.Tracer.parent = 0 then 0 else 1 + depth (span_by_id s.Tracer.parent)
  in
  let chain = [ "dp.packet_in"; "ctrl.dispatch"; "ctrl.handler.dhcp"; "dhcp.handle" ] in
  List.iteri
    (fun i name ->
      Alcotest.(check int) (name ^ " at causal depth") i (depth (find_span grant name)))
    chain;
  Alcotest.(check bool) "hwdb.insert under the dhcp handler" true
    (depth (find_span grant "hwdb.insert") > List.length chain - 1);
  (* 2. the hwdb Traces table: plain CQL and the RPC subscription both see
     the same rows *)
  let has_trace_row (rs : Query.result_set) =
    let cols = rs.Query.columns in
    List.exists
      (fun row ->
        match (List.assoc_opt "trace_id" (List.combine cols row),
               List.assoc_opt "span" (List.combine cols row)) with
        | Some (Value.Int id), Some (Value.Str span) ->
            id = grant.Tracer.id && span = "dhcp.handle"
        | _ -> false)
      rs.Query.rows
  in
  (match Database.query (Router.db r) "SELECT trace_id, span, parent FROM Traces [NOW]" with
  | Ok rs -> Alcotest.(check bool) "SELECT FROM Traces sees the grant" true (has_trace_row rs)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "subscription published the grant trace" true
    (List.exists has_trace_row !published);
  (* 3. the control API: the listing carries the trace, the detail is
     loadable Chrome trace-event JSON *)
  let resp = Router.http r (Http.request Http.GET "/traces") in
  Alcotest.(check int) "GET /traces ok" 200 resp.Http.status;
  let listing = Json.of_string resp.Http.body in
  Alcotest.(check bool) "listing has the grant trace" true
    (List.exists
       (fun s -> Json.to_int (Json.member "trace_id" s) = grant.Tracer.id)
       (Json.get_list listing));
  let resp =
    Router.http r (Http.request Http.GET (Printf.sprintf "/traces/%d" grant.Tracer.id))
  in
  Alcotest.(check int) "GET /traces/:id ok" 200 resp.Http.status;
  let chrome = Json.of_string resp.Http.body in
  Alcotest.(check string) "displayTimeUnit for the trace viewer" "ms"
    (Json.get_string (Json.member "displayTimeUnit" chrome));
  let events = Json.get_list (Json.member "traceEvents" chrome) in
  Alcotest.(check int) "every span became an event" (Array.length grant.Tracer.spans)
    (List.length events);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " exported") true
        (List.exists (fun e -> Json.get_string (Json.member "name" e) = name) events))
    chain;
  (* unknown ids are a 404, not a crash *)
  let resp = Router.http r (Http.request Http.GET "/traces/999999") in
  Alcotest.(check int) "unknown trace is 404" 404 resp.Http.status;
  let resp = Router.http r (Http.request Http.GET "/traces/nonsense") in
  Alcotest.(check int) "malformed id is 404" 404 resp.Http.status

(* ------------------------------------------------------------------ *)
(* Cross-node propagation and off-stack assembly                       *)
(* ------------------------------------------------------------------ *)

let test_remote_trace_adopts_context () =
  let tracer, t = make () in
  let result =
    Tracer.with_remote_trace tracer ~trace_id:0xBEEF ~parent_span:42 "rpc.request"
      (fun () ->
        t := !t +. 0.001;
        Tracer.with_span tracer "db.query" (fun () -> 7))
  in
  Alcotest.(check int) "body ran" 7 result;
  match Tracer.traces tracer with
  | [ c ] ->
      Alcotest.(check int) "propagated trace id kept" 0xBEEF c.Tracer.id;
      let root = c.Tracer.spans.(0) in
      Alcotest.(check string) "root name" "rpc.request" root.Tracer.name;
      Alcotest.(check int) "root parent is the remote span" 42 root.Tracer.parent;
      Alcotest.(check int) "local span ids stay dense" 2
        (find_span c "db.query").Tracer.span_id;
      Alcotest.(check bool) "find by propagated id" true
        (Tracer.find tracer 0xBEEF <> None)
  | l -> Alcotest.failf "expected 1 trace, got %d" (List.length l)

let test_remote_trace_degrades () =
  let tracer, _t = make () in
  (* trace_id <= 0: behaves as a local with_trace *)
  Tracer.with_remote_trace tracer ~trace_id:0 ~parent_span:9 "r" (fun () -> ());
  (match Tracer.traces tracer with
  | [ c ] ->
      Alcotest.(check bool) "locally allocated id" true (c.Tracer.id > 0);
      Alcotest.(check int) "root has no parent" 0 c.Tracer.spans.(0).Tracer.parent
  | _ -> Alcotest.fail "expected 1 trace");
  Tracer.clear tracer;
  (* inside an active trace: degrades to a child span, no second trace *)
  Tracer.with_trace tracer "outer" (fun () ->
      Tracer.with_remote_trace tracer ~trace_id:0xABC ~parent_span:3 "inner" (fun () -> ()));
  match Tracer.traces tracer with
  | [ c ] ->
      Alcotest.(check bool) "kept the local id" true (c.Tracer.id <> 0xABC);
      Alcotest.(check int) "inner nested as child" 1 (find_span c "inner").Tracer.parent
  | l -> Alcotest.failf "expected 1 trace, got %d" (List.length l)

module Builder = Hw_trace.Builder

let test_builder_assembles_off_stack () =
  let tracer, t = make () in
  let b = Builder.start tracer "fleet.query" ~attrs:[ ("routers", Tracer.Int 3) ] in
  Alcotest.(check bool) "active" true (Builder.active b);
  Alcotest.(check bool) "trace id allocated" true (Builder.id b > 0);
  Alcotest.(check int) "root is span 1" 1 (Builder.root b);
  (* two spans open at once, closed out of order — the callback shape *)
  let a = Builder.open_span b "fleet.rpc" ~attrs:[ ("router", Tracer.Str "r0") ] in
  let c = Builder.open_span b "fleet.rpc" ~attrs:[ ("router", Tracer.Str "r1") ] in
  t := !t +. 0.002;
  Builder.close_span b c;
  Builder.mark_error b a "timeout";
  Builder.close_span b a;
  (* attrs may settle after close (final retry count) *)
  Builder.set_attr b a "attempts" (Tracer.Int 4);
  Builder.finish b;
  Builder.finish b (* idempotent *);
  Alcotest.(check bool) "inactive after finish" false (Builder.active b);
  Alcotest.(check int) "finished builder opens nothing" 0 (Builder.open_span b "late");
  match Tracer.find tracer (Builder.id b) with
  | None -> Alcotest.fail "builder trace not recorded"
  | Some tr ->
      Alcotest.(check int) "three spans" 3 (Array.length tr.Tracer.spans);
      Alcotest.(check bool) "trace errored" true tr.Tracer.errored;
      let sa = Array.to_list tr.Tracer.spans |> List.find (fun s -> s.Tracer.span_id = a) in
      Alcotest.(check (option string)) "error mark" (Some "timeout") sa.Tracer.error;
      Alcotest.(check bool) "post-close attr present" true
        (List.mem_assoc "attempts" sa.Tracer.attrs);
      Alcotest.(check int) "children parent the root" 1 sa.Tracer.parent

let test_builder_inert_when_disabled () =
  let b = Builder.start Tracer.disabled "x" in
  Alcotest.(check int) "id 0" 0 (Builder.id b);
  Alcotest.(check int) "root 0" 0 (Builder.root b);
  Alcotest.(check bool) "never active" false (Builder.active b);
  let s = Builder.open_span b "y" in
  Alcotest.(check int) "open returns 0" 0 s;
  Builder.set_attr b s "k" (Tracer.Int 1);
  Builder.mark_error b s "e";
  Builder.close_span b s;
  Builder.finish b (* none of the above may raise *)

let () =
  Alcotest.run "hw_trace"
    [
      ( "recording",
        [
          Alcotest.test_case "nesting and parents" `Quick test_nesting;
          Alcotest.test_case "re-entrant with_trace" `Quick test_reentrant_trace;
          Alcotest.test_case "attrs and mark_error" `Quick test_attrs_and_error;
          Alcotest.test_case "exception marks error" `Quick test_exception_marks_error;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "1-in-N tail sampling" `Quick test_sampling_one_in_n;
          Alcotest.test_case "slow always kept" `Quick test_slow_always_kept;
          Alcotest.test_case "ring bounded" `Quick test_ring_bounded;
          Alcotest.test_case "untraced path is inert" `Quick test_untraced_path_touches_nothing;
          Alcotest.test_case "invalid args" `Quick test_invalid_args;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome json escaping" `Quick test_chrome_json_escaping;
          Alcotest.test_case "chrome json timebase" `Quick test_chrome_json_timebase;
        ] );
      ( "propagation",
        [
          Alcotest.test_case "remote trace adopts context" `Quick
            test_remote_trace_adopts_context;
          Alcotest.test_case "remote trace degrades" `Quick test_remote_trace_degrades;
          Alcotest.test_case "builder assembles off-stack" `Quick
            test_builder_assembles_off_stack;
          Alcotest.test_case "builder inert when disabled" `Quick
            test_builder_inert_when_disabled;
        ] );
      ( "log",
        [ Alcotest.test_case "stamps trace id" `Quick test_log_stamps_trace ] );
      ( "end to end",
        [ Alcotest.test_case "home dhcp causal chain" `Quick test_home_trace_end_to_end ] );
    ]
