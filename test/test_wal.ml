(* WAL durability suite.

   The crash-point matrix is the acceptance test for truncate-at-tear
   recovery: a generated log truncated at EVERY byte offset must recover
   exactly the records whose frames fit entirely within the prefix, and
   flipping any single byte of record i's frame must recover exactly the
   first i records.  Recovery never raises on malformed input.

   The codec properties feed hostile rows (64 KB+ strings, NaN/inf
   floats, empty rows) through the row codec and mangled logs through
   recovery; the store/database tests cover both backends and the
   durable-table spine end to end. *)

module Wal = Hw_wal.Wal
module Store = Hw_wal.Store
module Fault = Hw_fault.Fault
module Registry = Hw_metrics.Registry
module Counter = Hw_metrics.Counter
open Hw_hwdb

let counter_value metrics name = Counter.value (Registry.counter metrics name)

let fault_count metrics kind =
  Counter.value
    (Registry.labeled_counter metrics "fault_injected_total" ~labels:[ ("kind", kind) ])

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_records = Alcotest.(check (list string))

(* Frame layout mirrored from wal.ml: u32 len | u32 crc | u64 lsn | payload. *)
let frame_len payload = 16 + String.length payload

let take k xs = List.filteri (fun i _ -> i < k) xs

(* ------------------------------------------------------------------ *)
(* Round trip                                                          *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  let store = Store.mem () in
  let wal, r0 = Wal.open_ ~metrics:(Registry.create ()) ~store ~name:"t" () in
  check_int "fresh next_lsn" 0 (Wal.next_lsn wal);
  check_records "fresh store recovers nothing" [] r0.Wal.records;
  check_bool "fresh store has no snapshot" true (r0.Wal.snapshot = None);
  let payloads = [ ""; "a"; String.make 300 'x'; "\x00\xff\x01" ] in
  List.iter (Wal.append wal) payloads;
  check_int "appends buffer" 4 (Wal.pending wal);
  check_int "nothing on disk before flush" 0 (Store.size store "t.log");
  Wal.flush wal;
  check_int "flush drains the buffer" 0 (Wal.pending wal);
  let r = Wal.recover ~store ~name:"t" in
  check_records "records round-trip in order" payloads r.Wal.records;
  check_bool "clean log is not torn" false r.Wal.tail_truncated;
  check_int "next_lsn counts assigned records" 4 r.Wal.next_lsn;
  (* reopen and extend: recovery accumulates across generations *)
  let wal2, r2 = Wal.open_ ~metrics:(Registry.create ()) ~store ~name:"t" () in
  check_records "reopen sees the same records" payloads r2.Wal.records;
  check_int "reopen resumes the LSN sequence" 4 (Wal.next_lsn wal2);
  Wal.append wal2 "tail";
  Wal.flush wal2;
  let r3 = Wal.recover ~store ~name:"t" in
  check_records "second-generation append lands after" (payloads @ [ "tail" ])
    r3.Wal.records

(* ------------------------------------------------------------------ *)
(* Crash-point matrix                                                  *)
(* ------------------------------------------------------------------ *)

(* A log of 12 records with assorted payload sizes (including empty),
   plus the byte offset after each record: boundaries.(k) is where the
   first k records end. *)
let build_matrix_log () =
  let store = Store.mem () in
  let wal, _ = Wal.open_ ~metrics:(Registry.create ()) ~store ~name:"m" () in
  let payloads = List.init 12 (fun i -> String.make (i * 7 mod 23) (Char.chr (65 + i))) in
  List.iter (Wal.append wal) payloads;
  Wal.flush wal;
  let log =
    match Store.load store "m.log" with
    | Some l -> l
    | None -> Alcotest.fail "flush produced no log blob"
  in
  let boundaries = Array.make (List.length payloads + 1) 0 in
  List.iteri
    (fun i p -> boundaries.(i + 1) <- boundaries.(i) + frame_len p)
    payloads;
  check_int "log is exactly the framed records"
    boundaries.(List.length payloads) (String.length log);
  (payloads, log, boundaries)

(* largest k with boundaries.(k) <= l: how many whole records fit in l bytes *)
let records_within boundaries l =
  let k = ref 0 in
  while !k + 1 < Array.length boundaries && boundaries.(!k + 1) <= l do incr k done;
  !k

let test_crash_point_matrix () =
  let payloads, log, boundaries = build_matrix_log () in
  for l = 0 to String.length log do
    let k = records_within boundaries l in
    let expected = take k payloads in
    let s = Store.mem () in
    Store.replace s "m.log" (String.sub log 0 l);
    let r = Wal.recover ~store:s ~name:"m" in
    check_records
      (Printf.sprintf "cut at byte %d recovers the first %d records" l k)
      expected r.Wal.records;
    check_bool
      (Printf.sprintf "tear flag at byte %d" l)
      (l <> boundaries.(k))
      r.Wal.tail_truncated;
    (* open_ physically truncates to the durable prefix and appends land
       cleanly after it, never behind garbage *)
    let scratch = Registry.create () in
    let w2, _ = Wal.open_ ~metrics:scratch ~store:s ~name:"m" () in
    check_int
      (Printf.sprintf "blob truncated to the durable prefix at %d" l)
      boundaries.(k) (Store.size s "m.log");
    if l <> boundaries.(k) then
      check_int
        (Printf.sprintf "truncation counted at %d" l)
        1
        (counter_value scratch "wal_recovery_truncated_total");
    Wal.append w2 "post-tear";
    Wal.flush w2;
    let r2 = Wal.recover ~store:s ~name:"m" in
    check_records
      (Printf.sprintf "append after recovery at %d extends the prefix" l)
      (expected @ [ "post-tear" ])
      r2.Wal.records;
    check_bool
      (Printf.sprintf "log is clean again after truncation at %d" l)
      false r2.Wal.tail_truncated
  done

let test_bit_flip_matrix () =
  let payloads, log, boundaries = build_matrix_log () in
  for pos = 0 to String.length log - 1 do
    (* the record whose frame owns byte [pos] is the first casualty *)
    let k = records_within boundaries pos in
    let b = Bytes.of_string log in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
    let s = Store.mem () in
    Store.replace s "m.log" (Bytes.to_string b);
    let r = Wal.recover ~store:s ~name:"m" in
    check_records
      (Printf.sprintf "flip at byte %d recovers the first %d records" pos k)
      (take k payloads) r.Wal.records;
    check_bool (Printf.sprintf "flip at byte %d is a tear" pos) true
      r.Wal.tail_truncated
  done

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

let test_snapshot_and_corrupt_snapshot () =
  let store = Store.mem () in
  let wal, _ = Wal.open_ ~metrics:(Registry.create ()) ~store ~name:"s" () in
  Wal.set_snapshot_source wal (fun () -> "SNAP");
  List.iter (Wal.append wal) [ "a"; "b" ];
  Wal.flush wal;
  Wal.snapshot wal;
  check_int "snapshot truncates the log" 0 (Store.size store "s.log");
  Wal.append wal "c";
  Wal.flush wal;
  let r = Wal.recover ~store ~name:"s" in
  Alcotest.(check (option string)) "snapshot payload" (Some "SNAP") r.Wal.snapshot;
  check_records "only the post-snapshot tail replays" [ "c" ] r.Wal.records;
  check_int "next_lsn still counts covered records" 3 r.Wal.next_lsn;
  (* a snapshot that fails its CRC is treated as absent *)
  let snap =
    match Store.load store "s.snap" with
    | Some s -> s
    | None -> Alcotest.fail "snapshot blob missing"
  in
  let b = Bytes.of_string snap in
  let pos = Bytes.length b - 1 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
  Store.replace store "s.snap" (Bytes.to_string b);
  let scratch = Registry.create () in
  let _, r2 = Wal.open_ ~metrics:scratch ~store ~name:"s" () in
  check_bool "corrupt snapshot dropped" true (r2.Wal.snapshot = None);
  check_records "log tail still replays" [ "c" ] r2.Wal.records;
  check_int "corruption counted" 1 (counter_value scratch "wal_snapshot_corrupt_total")

let test_auto_snapshot_bounds_log () =
  let store = Store.mem () in
  let scratch = Registry.create () in
  let wal, _ = Wal.open_ ~metrics:scratch ~snapshot_every:8 ~store ~name:"b" () in
  (* live state = the last 8 payloads, like a ring-buffered table *)
  let live = Queue.create () in
  Wal.set_snapshot_source wal (fun () ->
      String.concat "," (List.of_seq (Queue.to_seq live)));
  for i = 1 to 100 do
    let p = Printf.sprintf "r%03d" i in
    Queue.push p live;
    if Queue.length live > 8 then ignore (Queue.pop live);
    Wal.append wal p;
    if i mod 3 = 0 then Wal.flush wal
  done;
  Wal.flush wal;
  check_bool "snapshots were taken automatically" true
    (counter_value scratch "wal_snapshots_total" >= 10);
  (* the log holds at most one snapshot interval of records (plus the
     flush granularity), never the whole history *)
  check_bool "log bounded by snapshot cadence" true
    (Store.size store "b.log" <= 11 * frame_len "rNNN");
  (* snapshot + tail reconstructs exactly the live suffix *)
  let r = Wal.recover ~store ~name:"b" in
  let from_snap =
    match r.Wal.snapshot with
    | None | Some "" -> []
    | Some s -> String.split_on_char ',' s
  in
  let replayed = from_snap @ r.Wal.records in
  let suffix =
    let n = List.length replayed in
    List.filteri (fun i _ -> i >= n - 8) replayed
  in
  check_records "replay converges on the live state"
    (List.of_seq (Queue.to_seq live))
    suffix

(* ------------------------------------------------------------------ *)
(* Crash mid-batch                                                     *)
(* ------------------------------------------------------------------ *)

let test_interposer_crash_leaves_durable_prefix () =
  let store = Store.mem () in
  let calls = ref 0 in
  let boom = ref max_int in
  let interpose record ~write =
    incr calls;
    if !calls > !boom then raise Exit;
    write record
  in
  let wal, _ =
    Wal.open_ ~metrics:(Registry.create ()) ~interpose ~store ~name:"c" ()
  in
  let payloads = List.init 10 (fun i -> Printf.sprintf "p%d" i) in
  List.iter (Wal.append wal) payloads;
  boom := 6;
  (* the 7th record of the batch crashes *)
  (match Wal.flush wal with
  | () -> Alcotest.fail "expected the injected crash to propagate"
  | exception Exit -> ());
  let r = Wal.recover ~store ~name:"c" in
  check_records "the batch prefix before the crash is durable"
    (take 6 payloads) r.Wal.records;
  check_bool "prefix flush leaves no tear" false r.Wal.tail_truncated

(* ------------------------------------------------------------------ *)
(* Disk fault plane semantics                                          *)
(* ------------------------------------------------------------------ *)

let test_disk_fault_semantics () =
  let metrics = Registry.create () in
  let now () = 0. in
  let inj = Fault.create ~metrics ~seed:11 ~now ~point:"disk" () in
  let payload = "hello world" in
  let out = ref [] in
  let write s = out := s :: !out in
  (* Corrupt 1.0: same length, different bytes *)
  Fault.set_plan inj [ Fault.Corrupt 1.0 ];
  Fault.apply_write inj payload ~write;
  (match !out with
  | [ s ] ->
      check_int "corrupt keeps the length" (String.length payload) (String.length s);
      check_bool "corrupt changes a byte" true (s <> payload)
  | _ -> Alcotest.fail "corrupt should write exactly once");
  check_int "corrupt counted" 1 (fault_count metrics "corrupt");
  (* Drop 1.0: a short write — a strict prefix reaches the store *)
  Fault.set_plan inj [ Fault.Drop 1.0 ];
  out := [];
  Fault.apply_write inj payload ~write;
  (match !out with
  | [ s ] ->
      check_bool "short write is a strict prefix" true
        (String.length s < String.length payload
        && String.equal s (String.sub payload 0 (String.length s)))
  | _ -> Alcotest.fail "short write should write exactly once");
  check_bool "short write counted as drop" true (fault_count metrics "drop" >= 1);
  (* Crash 1.0: nothing written, Injected_crash carries the point *)
  Fault.set_plan inj [ Fault.Crash 1.0 ];
  out := [];
  (match Fault.apply_write inj payload ~write with
  | () -> Alcotest.fail "expected Injected_crash"
  | exception Fault.Injected_crash p ->
      Alcotest.(check string) "crash names the choke point" "disk" p);
  check_int "crash-at-boundary writes nothing" 0 (List.length !out);
  check_bool "crash counted" true (fault_count metrics "crash" >= 1);
  (* Drop + Crash: torn write, then the process dies *)
  Fault.set_plan inj [ Fault.Drop 1.0; Fault.Crash 1.0 ];
  out := [];
  (match Fault.apply_write inj payload ~write with
  | () -> Alcotest.fail "expected Injected_crash after the torn write"
  | exception Fault.Injected_crash _ -> ());
  (match !out with
  | [ s ] -> check_bool "torn prefix hit the store first" true (String.length s < String.length payload)
  | _ -> Alcotest.fail "torn-then-crash should write exactly once")

(* A WAL whose writes pass through a seeded disk injector: whatever the
   faults did, recovery must yield a clean prefix of what was appended. *)
let test_faulty_wal_recovers_prefix () =
  let seed =
    match Sys.getenv_opt "CHAOS_SEED" with
    | Some s -> ( try int_of_string (String.trim s) with _ -> 7)
    | None -> 7
  in
  let metrics = Registry.create () in
  let now () = 0. in
  let inj = Fault.create ~metrics ~seed ~now ~point:"disk" () in
  Fault.set_plan inj [ Fault.Drop 0.15; Fault.Corrupt 0.1; Fault.Crash 0.05 ];
  let store = Store.mem () in
  let interpose record ~write =
    if Fault.armed inj then Fault.apply_write inj record ~write else write record
  in
  let payloads = ref [] in
  let crashed = ref 0 in
  let generation = ref 0 in
  (* run a few crash/recover generations; each reopen must see a prefix *)
  let rec is_prefix xs ys =
    match (xs, ys) with
    | [], _ -> true
    | x :: xs', y :: ys' -> String.equal x y && is_prefix xs' ys'
    | _ :: _, [] -> false
  in
  while !generation < 5 do
    incr generation;
    let wal, r =
      Wal.open_ ~metrics:(Registry.create ()) ~interpose ~store ~name:"f" ()
    in
    check_bool
      (Printf.sprintf "seed %d gen %d: recovery is a prefix" seed !generation)
      true
      (is_prefix r.Wal.records !payloads);
    (* the durable prefix IS the truth now: the rest was never written *)
    payloads := r.Wal.records;
    (try
       for i = 1 to 40 do
         let p = Printf.sprintf "g%d-%03d" !generation i in
         Wal.append wal p;
         payloads := !payloads @ [ p ];
         if i mod 8 = 0 then Wal.flush wal
       done;
       Wal.flush wal
     with Fault.Injected_crash _ -> incr crashed);
    (* anything still buffered (or lost to faults) must disappear from
       the truth on the next recovery — handled by the prefix check *)
  done;
  Fault.disarm inj;
  let _, r = Wal.open_ ~metrics:(Registry.create ()) ~store ~name:"f" () in
  check_bool
    (Printf.sprintf "seed %d: final recovery is a prefix" seed)
    true
    (is_prefix r.Wal.records !payloads);
  check_bool
    (Printf.sprintf "seed %d: the fault plan actually fired" seed)
    true
    (fault_count metrics "drop" + fault_count metrics "corrupt"
     + fault_count metrics "crash"
    > 0)

(* ------------------------------------------------------------------ *)
(* Store backends                                                      *)
(* ------------------------------------------------------------------ *)

let test_file_store () =
  let dir = Filename.temp_file "hw_wal_store" ".d" in
  Sys.remove dir;
  let store = Store.file ~fsync:true ~dir () in
  Store.append store "a.log" "hello ";
  Store.append store "a.log" "world";
  Alcotest.(check (option string)) "append accumulates" (Some "hello world")
    (Store.load store "a.log");
  Store.replace store "a.log" "fresh";
  Alcotest.(check (option string)) "replace swaps contents" (Some "fresh")
    (Store.load store "a.log");
  check_int "size" 5 (Store.size store "a.log");
  Alcotest.(check (option string)) "absent blob" None (Store.load store "missing");
  Store.remove store "a.log";
  Alcotest.(check (option string)) "removed blob" None (Store.load store "a.log");
  check_int "removed size" 0 (Store.size store "a.log");
  (match Store.load store "../evil" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "path separators must be rejected");
  (* WAL round-trip through the filesystem, reopened via a fresh handle *)
  let wal, _ = Wal.open_ ~metrics:(Registry.create ()) ~store ~name:"w" () in
  List.iter (Wal.append wal) [ "x"; "y"; "z" ];
  Wal.flush wal;
  let store2 = Store.file ~dir () in
  let r = Wal.recover ~store:store2 ~name:"w" in
  check_records "file-backed records survive reopen" [ "x"; "y"; "z" ] r.Wal.records;
  List.iter (Store.remove store) [ "w.log"; "w.snap" ];
  (try Sys.rmdir dir with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Row codec: hostile inputs                                           *)
(* ------------------------------------------------------------------ *)

let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let value_equal a b =
  match (a, b) with
  | Value.Int x, Value.Int y -> x = y
  | Value.Bool x, Value.Bool y -> x = y
  | Value.Str x, Value.Str y -> String.equal x y
  | Value.Real x, Value.Real y | Value.Ts x, Value.Ts y -> feq x y
  | _ -> false

let tuple_equal (a : Value.tuple) (b : Value.tuple) =
  feq a.Value.ts b.Value.ts
  && Array.length a.Value.values = Array.length b.Value.values
  && Array.for_all2 value_equal a.Value.values b.Value.values

let print_tuple (t : Value.tuple) =
  Printf.sprintf "{ts=%h; [%s]}" t.Value.ts
    (String.concat "; "
       (List.map
          (fun v ->
            let s = Value.to_string v in
            if String.length s > 40 then
              Printf.sprintf "%s...(%d bytes)" (String.sub s 0 40) (String.length s)
            else s)
          (Array.to_list t.Value.values)))

let hostile_value_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun i -> Value.Int i) (oneofl [ 0; 1; -1; 42; max_int; min_int ]));
        ( 2,
          map
            (fun f -> Value.Real f)
            (oneofl [ 0.; -0.; 1.5; nan; infinity; neg_infinity; epsilon_float ]) );
        ( 3,
          map
            (fun s -> Value.Str s)
            (string_size
               (frequency [ (6, int_bound 20); (1, oneofl [ 65535; 65536; 70000 ]) ]))
        );
        (1, map (fun b -> Value.Bool b) bool);
        (1, map (fun f -> Value.Ts f) (oneofl [ 0.; 1.7e9; nan; infinity ]));
      ])

let hostile_row_gen =
  QCheck.Gen.(
    map2
      (fun ts values -> { Value.ts; values = Array.of_list values })
      (oneofl [ 0.; -1.; 1.7e9; nan; infinity ])
      (list_size (int_bound 6) hostile_value_gen))

let arbitrary_row = QCheck.make ~print:print_tuple hostile_row_gen

let prop_row_roundtrip =
  QCheck.Test.make ~name:"hostile rows round-trip the WAL codec exactly" ~count:200
    arbitrary_row (fun row ->
      match Wal_codec.decode_row (Wal_codec.encode_row row) with
      | Some row' -> tuple_equal row row'
      | None -> false)

let prop_rows_roundtrip =
  QCheck.Test.make ~name:"row batches round-trip the snapshot codec" ~count:100
    QCheck.(make Gen.(list_size (int_bound 5) hostile_row_gen))
    (fun rows ->
      match Wal_codec.decode_rows (Wal_codec.encode_rows rows) with
      | Some rows' ->
          List.length rows = List.length rows'
          && List.for_all2 tuple_equal rows rows'
      | None -> false)

let prop_codec_total =
  QCheck.Test.make
    ~name:"decode_row is total: arbitrary bytes yield Some or None, never raise"
    ~count:300
    QCheck.(string_of_size Gen.(int_bound 80))
    (fun junk ->
      (* mangled prefixes of a real row plus raw junk: must not raise *)
      let real = Wal_codec.encode_row { Value.ts = 1.; values = [| Value.Str junk |] } in
      let cut = String.length junk mod (String.length real + 1) in
      ignore (Wal_codec.decode_row junk);
      ignore (Wal_codec.decode_row (String.sub real 0 cut));
      ignore (Wal_codec.decode_rows junk);
      true)

let prop_mangled_log_recovers_prefix =
  QCheck.Test.make
    ~name:"randomly truncated+flipped logs recover a prefix, never raise" ~count:150
    QCheck.(
      triple
        (small_list (string_of_size Gen.(int_bound 40)))
        small_nat (option small_nat))
    (fun (payloads, cut, flip) ->
      let store = Store.mem () in
      let wal, _ = Wal.open_ ~metrics:(Registry.create ()) ~store ~name:"p" () in
      List.iter (Wal.append wal) payloads;
      Wal.flush wal;
      let log = match Store.load store "p.log" with Some l -> l | None -> "" in
      let log =
        if String.length log = 0 then log
        else String.sub log 0 (cut mod (String.length log + 1))
      in
      let log =
        match flip with
        | Some f when String.length log > 0 ->
            let b = Bytes.of_string log in
            let pos = f mod Bytes.length b in
            Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10));
            Bytes.to_string b
        | _ -> log
      in
      Store.replace store "p.log" log;
      let r = Wal.recover ~store ~name:"p" in
      let rec is_prefix xs ys =
        match (xs, ys) with
        | [], _ -> true
        | x :: xs', y :: ys' -> String.equal x y && is_prefix xs' ys'
        | _ :: _, [] -> false
      in
      is_prefix r.Wal.records payloads)

(* ------------------------------------------------------------------ *)
(* Database-level durability                                           *)
(* ------------------------------------------------------------------ *)

let scan_table db name =
  match Database.table db name with Some t -> Table.scan t | None -> []

let test_database_recovery_roundtrip () =
  let store = Store.mem () in
  let clock = ref 100. in
  let now () = !clock in
  let db1 = Database.create ~metrics:(Registry.create ()) ~recover_from:store ~now () in
  for i = 1 to 50 do
    clock := !clock +. 1.;
    Database.record_lease db1
      ~mac:(Printf.sprintf "00:16:3e:00:00:%02x" i)
      ~ip:(Printf.sprintf "10.0.0.%d" (100 + (i mod 40)))
      ~hostname:(Printf.sprintf "dev%d" i)
      ~action:(if i mod 7 = 0 then "revoke" else "grant");
    Database.record_policy db1 ~kind:"token" ~id:(Printf.sprintf "tok%d" i)
      ~payload:"" ~action:"set"
  done;
  Database.flush_wal db1;
  let db2 = Database.create ~metrics:(Registry.create ()) ~recover_from:store ~now () in
  List.iter
    (fun name ->
      let a = scan_table db1 name and b = scan_table db2 name in
      check_int (name ^ " row count recovers") (List.length a) (List.length b);
      List.iter2
        (fun x y ->
          check_bool (name ^ " tuples recover bit-exact (incl. timestamps)") true
            (tuple_equal x y))
        a b)
    [ "Leases"; "Policies" ];
  (* ephemeral tables are not logged *)
  check_records "no WAL blobs for ephemeral tables" []
    (List.filter (fun n -> Store.size store (n ^ ".log") > 0) [ "Flows"; "Links" ]);
  (* an unflushed insert is the at-most-one-tick loss window *)
  clock := !clock +. 1.;
  Database.record_lease db1 ~mac:"00:16:3e:00:00:ff" ~ip:"10.0.0.9" ~hostname:"late"
    ~action:"grant";
  let db3 = Database.create ~metrics:(Registry.create ()) ~recover_from:store ~now () in
  check_int "unflushed row is lost (bounded loss window)" 50
    (List.length (scan_table db3 "Leases"));
  (* ...and tick makes it durable *)
  Database.tick db1;
  let db4 = Database.create ~metrics:(Registry.create ()) ~recover_from:store ~now () in
  check_int "tick group-commits the pending row" 51
    (List.length (scan_table db4 "Leases"))

let test_database_snapshot_bounds_store () =
  let store = Store.mem () in
  let clock = ref 0. in
  let now () = !clock in
  (* tiny rings so snapshots trigger often *)
  let db =
    Database.create ~default_capacity:32 ~metrics:(Registry.create ())
      ~recover_from:store ~now ()
  in
  for i = 1 to 1000 do
    clock := !clock +. 1.;
    Database.record_lease db ~mac:"00:16:3e:00:00:01" ~ip:"10.0.0.100"
      ~hostname:(Printf.sprintf "h%d" i) ~action:"renew";
    if i mod 10 = 0 then Database.tick db
  done;
  Database.flush_wal db;
  (* log + snapshot are bounded by live state (32 rows; snapshots fire
     every 4x capacity = 128 records), not by the 1000 inserts — a
     structural bound: well under the ~90 KB an untruncated log of 1000
     framed rows would occupy *)
  let footprint = Store.size store "Leases.log" + Store.size store "Leases.snap" in
  check_bool
    (Printf.sprintf "store footprint bounded by live state (%d bytes)" footprint)
    true (footprint < 32 * 1024);
  let db2 =
    Database.create ~default_capacity:32 ~metrics:(Registry.create ())
      ~recover_from:store ~now ()
  in
  let a = scan_table db "Leases" and b = scan_table db2 "Leases" in
  check_int "ring contents recover" (List.length a) (List.length b);
  List.iter2
    (fun x y -> check_bool "recovered tuple matches" true (tuple_equal x y))
    a b

let () =
  Alcotest.run "hw_wal"
    [
      ( "wal",
        [
          Alcotest.test_case "append/flush/recover round-trip" `Quick test_roundtrip;
          Alcotest.test_case "crash-point matrix: every byte offset" `Quick
            test_crash_point_matrix;
          Alcotest.test_case "bit-flip matrix: every byte" `Quick test_bit_flip_matrix;
          Alcotest.test_case "snapshot truncation + corrupt snapshot" `Quick
            test_snapshot_and_corrupt_snapshot;
          Alcotest.test_case "auto-snapshot bounds the log" `Quick
            test_auto_snapshot_bounds_log;
          Alcotest.test_case "interposer crash leaves the batch prefix" `Quick
            test_interposer_crash_leaves_durable_prefix;
        ] );
      ( "faults",
        [
          Alcotest.test_case "disk fault semantics" `Quick test_disk_fault_semantics;
          Alcotest.test_case "seeded faulty WAL always recovers a prefix" `Quick
            test_faulty_wal_recovers_prefix;
        ] );
      ( "store",
        [ Alcotest.test_case "file backend" `Quick test_file_store ] );
      ( "codec",
        [
          QCheck_alcotest.to_alcotest prop_row_roundtrip;
          QCheck_alcotest.to_alcotest prop_rows_roundtrip;
          QCheck_alcotest.to_alcotest prop_codec_total;
          QCheck_alcotest.to_alcotest prop_mangled_log_recovers_prefix;
        ] );
      ( "database",
        [
          Alcotest.test_case "durable tables recover bit-exact" `Quick
            test_database_recovery_roundtrip;
          Alcotest.test_case "snapshots bound the database store" `Quick
            test_database_snapshot_bounds_store;
        ] );
    ]
